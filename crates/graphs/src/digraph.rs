//! Compressed-sparse-row directed graphs.
//!
//! The [`Digraph`] type is the workhorse of the whole reproduction: every
//! point-to-point topology (Kautz, Imase–Itoh, de Bruijn, complete digraph,
//! hypercube, …) is materialised as a `Digraph`, and the stack-graph model of
//! multi-OPS networks is built on top of it.
//!
//! The representation is a classic CSR (compressed sparse row) layout:
//! out-neighbours of node `u` are stored contiguously in `heads[out_offsets[u]
//! .. out_offsets[u + 1]]`.  An optional reverse CSR is built lazily-at-build
//! time so that in-neighbour queries are O(in-degree).  Arcs keep their
//! insertion order inside each source bucket, which matters for the OTIS
//! designs where the α-th arc out of a node is meaningful.

use crate::error::GraphError;

/// Identifier of a node inside a [`Digraph`]; always in `0..n`.
pub type NodeId = usize;

/// A directed arc `(source, target)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Arc {
    /// Source node of the arc.
    pub source: NodeId,
    /// Target node of the arc.
    pub target: NodeId,
}

impl Arc {
    /// Creates a new arc from `source` to `target`.
    pub fn new(source: NodeId, target: NodeId) -> Self {
        Arc { source, target }
    }

    /// Returns `true` if this arc is a loop (source equals target).
    pub fn is_loop(&self) -> bool {
        self.source == self.target
    }
}

/// Incremental builder for [`Digraph`].
///
/// Arcs may be added in any order; duplicates (multi-arcs) are preserved
/// because several topologies in the paper (for example `II(d, n)` with small
/// `n`) are genuinely multi-digraphs.
#[derive(Debug, Clone, Default)]
pub struct DigraphBuilder {
    n: usize,
    arcs: Vec<Arc>,
}

impl DigraphBuilder {
    /// Creates a builder for a digraph with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        DigraphBuilder {
            n,
            arcs: Vec::new(),
        }
    }

    /// Creates a builder with `n` nodes and room for `m` arcs.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        DigraphBuilder {
            n,
            arcs: Vec::with_capacity(m),
        }
    }

    /// Number of nodes this builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of arcs added so far.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an arc from `source` to `target`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range; topology generators are
    /// expected to be internally consistent, so an out-of-range endpoint is a
    /// programming error rather than a recoverable condition.
    pub fn add_arc(&mut self, source: NodeId, target: NodeId) -> &mut Self {
        assert!(
            source < self.n,
            "arc source {source} out of range for {} nodes",
            self.n
        );
        assert!(
            target < self.n,
            "arc target {target} out of range for {} nodes",
            self.n
        );
        self.arcs.push(Arc::new(source, target));
        self
    }

    /// Fallible variant of [`DigraphBuilder::add_arc`].
    pub fn try_add_arc(&mut self, source: NodeId, target: NodeId) -> Result<&mut Self, GraphError> {
        if source >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: source,
                n: self.n,
            });
        }
        if target >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: target,
                n: self.n,
            });
        }
        self.arcs.push(Arc::new(source, target));
        Ok(self)
    }

    /// Consumes the builder and produces the CSR digraph.
    ///
    /// Arc order is preserved *within* each source node (stable counting
    /// sort), which lets topology generators rely on "the α-th out-arc of
    /// node u" being well defined.
    pub fn build(self) -> Digraph {
        Digraph::from_arcs(self.n, &self.arcs)
    }
}

/// An immutable directed multigraph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    /// `out_offsets[u]..out_offsets[u+1]` indexes `out_heads` / `out_arc_ids`.
    out_offsets: Vec<usize>,
    out_heads: Vec<NodeId>,
    /// Original arc identifiers in the order they were given to the builder.
    out_arc_ids: Vec<usize>,
    in_offsets: Vec<usize>,
    in_tails: Vec<NodeId>,
    in_arc_ids: Vec<usize>,
    arcs: Vec<Arc>,
}

impl Digraph {
    /// Builds a digraph with `n` nodes from a list of arcs.
    pub fn from_arcs(n: usize, arcs: &[Arc]) -> Self {
        for a in arcs {
            assert!(
                a.source < n && a.target < n,
                "arc {a:?} out of range (n = {n})"
            );
        }
        let m = arcs.len();

        // Forward CSR via stable counting sort on source.
        let mut out_offsets = vec![0usize; n + 1];
        for a in arcs {
            out_offsets[a.source + 1] += 1;
        }
        for u in 0..n {
            out_offsets[u + 1] += out_offsets[u];
        }
        let mut cursor = out_offsets.clone();
        let mut out_heads = vec![0usize; m];
        let mut out_arc_ids = vec![0usize; m];
        for (id, a) in arcs.iter().enumerate() {
            let pos = cursor[a.source];
            out_heads[pos] = a.target;
            out_arc_ids[pos] = id;
            cursor[a.source] += 1;
        }

        // Reverse CSR via stable counting sort on target.
        let mut in_offsets = vec![0usize; n + 1];
        for a in arcs {
            in_offsets[a.target + 1] += 1;
        }
        for u in 0..n {
            in_offsets[u + 1] += in_offsets[u];
        }
        let mut cursor = in_offsets.clone();
        let mut in_tails = vec![0usize; m];
        let mut in_arc_ids = vec![0usize; m];
        for (id, a) in arcs.iter().enumerate() {
            let pos = cursor[a.target];
            in_tails[pos] = a.source;
            in_arc_ids[pos] = id;
            cursor[a.target] += 1;
        }

        Digraph {
            n,
            out_offsets,
            out_heads,
            out_arc_ids,
            in_offsets,
            in_tails,
            in_arc_ids,
            arcs: arcs.to_vec(),
        }
    }

    /// Builds a digraph from `(source, target)` pairs.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let arcs: Vec<Arc> = edges.iter().map(|&(u, v)| Arc::new(u, v)).collect();
        Self::from_arcs(n, &arcs)
    }

    /// An empty digraph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Self::from_arcs(n, &[])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of arcs (counting multiplicities and loops).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// All arcs in original insertion order.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// The arc with a given identifier (insertion order).
    pub fn arc(&self, id: usize) -> Result<Arc, GraphError> {
        self.arcs.get(id).copied().ok_or(GraphError::ArcOutOfRange {
            arc: id,
            m: self.arcs.len(),
        })
    }

    /// Out-neighbours of `u`, in the order their arcs were inserted.
    ///
    /// # Panics
    /// Panics if `u >= n`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_heads[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbours of `u`, in the order their arcs were inserted.
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_tails[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Identifiers of the arcs leaving `u`, in insertion order.
    pub fn out_arc_ids(&self, u: NodeId) -> &[usize] {
        &self.out_arc_ids[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Identifiers of the arcs entering `u`, in insertion order.
    pub fn in_arc_ids(&self, u: NodeId) -> &[usize] {
        &self.in_arc_ids[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Out-degree of `u` (loops count once).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    /// In-degree of `u` (loops count once).
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_offsets[u + 1] - self.in_offsets[u]
    }

    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub fn max_out_degree(&self) -> usize {
        (0..self.n).map(|u| self.out_degree(u)).max().unwrap_or(0)
    }

    /// Minimum out-degree over all nodes (0 for the empty graph).
    pub fn min_out_degree(&self) -> usize {
        (0..self.n).map(|u| self.out_degree(u)).min().unwrap_or(0)
    }

    /// Returns `true` if every node has out-degree and in-degree exactly `d`.
    pub fn is_d_regular(&self, d: usize) -> bool {
        (0..self.n).all(|u| self.out_degree(u) == d && self.in_degree(u) == d)
    }

    /// Number of loop arcs.
    pub fn loop_count(&self) -> usize {
        self.arcs.iter().filter(|a| a.is_loop()).count()
    }

    /// Returns `true` if there is at least one arc from `u` to `v`.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).contains(&v)
    }

    /// Number of parallel arcs from `u` to `v`.
    pub fn arc_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.out_neighbors(u).iter().filter(|&&w| w == v).count()
    }

    /// Returns the digraph with every arc reversed.
    pub fn reverse(&self) -> Digraph {
        let arcs: Vec<Arc> = self
            .arcs
            .iter()
            .map(|a| Arc::new(a.target, a.source))
            .collect();
        Digraph::from_arcs(self.n, &arcs)
    }

    /// Returns a copy with a loop added at every node (the `G⁺` operation used
    /// by the paper to define `K⁺_g` and `KG⁺(d, k)`).
    ///
    /// Nodes that already carry a loop do not receive a second one.
    pub fn with_loops(&self) -> Digraph {
        let mut arcs = self.arcs.clone();
        for u in 0..self.n {
            if !self.has_arc(u, u) {
                arcs.push(Arc::new(u, u));
            }
        }
        Digraph::from_arcs(self.n, &arcs)
    }

    /// Returns a copy with all loops removed.
    pub fn without_loops(&self) -> Digraph {
        let arcs: Vec<Arc> = self.arcs.iter().copied().filter(|a| !a.is_loop()).collect();
        Digraph::from_arcs(self.n, &arcs)
    }

    /// Returns the induced subgraph on `keep` (given as a boolean mask), with
    /// nodes renumbered in increasing order of their original identifiers.
    /// The second return value maps old node ids to new ones.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Digraph, Vec<Option<NodeId>>) {
        assert_eq!(keep.len(), self.n, "mask length must equal node count");
        let mut map: Vec<Option<NodeId>> = vec![None; self.n];
        let mut next = 0usize;
        for u in 0..self.n {
            if keep[u] {
                map[u] = Some(next);
                next += 1;
            }
        }
        let mut arcs = Vec::new();
        for a in &self.arcs {
            if let (Some(s), Some(t)) = (map[a.source], map[a.target]) {
                arcs.push(Arc::new(s, t));
            }
        }
        (Digraph::from_arcs(next, &arcs), map)
    }

    /// Sorted multiset of `(source, target)` pairs — a canonical form used to
    /// compare two digraphs on the *same* labelled node set.
    pub fn sorted_arc_list(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self.arcs.iter().map(|a| (a.source, a.target)).collect();
        v.sort_unstable();
        v
    }

    /// Returns `true` if the two digraphs have the same node count and exactly
    /// the same multiset of arcs (labelled equality, not isomorphism).
    pub fn same_arcs(&self, other: &Digraph) -> bool {
        self.n == other.n && self.sorted_arc_list() == other.sorted_arc_list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    #[test]
    fn builder_counts() {
        let mut b = DigraphBuilder::with_capacity(3, 2);
        b.add_arc(0, 1).add_arc(1, 2);
        assert_eq!(b.node_count(), 3);
        assert_eq!(b.arc_count(), 2);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 2);
    }

    #[test]
    fn try_add_arc_rejects_out_of_range() {
        let mut b = DigraphBuilder::new(2);
        assert!(b.try_add_arc(0, 1).is_ok());
        assert!(matches!(
            b.try_add_arc(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
        assert!(matches!(
            b.try_add_arc(7, 0),
            Err(GraphError::NodeOutOfRange { node: 7, n: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_arc_panics_out_of_range() {
        let mut b = DigraphBuilder::new(2);
        b.add_arc(0, 2);
    }

    #[test]
    fn cycle_neighborhoods() {
        let g = cycle(5);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[4]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(2), 1);
        assert!(g.is_d_regular(1));
        assert!(!g.is_d_regular(2));
    }

    #[test]
    fn arc_order_is_preserved_per_source() {
        let mut b = DigraphBuilder::new(4);
        b.add_arc(1, 3).add_arc(0, 2).add_arc(1, 0).add_arc(1, 2);
        let g = b.build();
        assert_eq!(g.out_neighbors(1), &[3, 0, 2]);
        assert_eq!(g.out_arc_ids(1), &[0, 2, 3]);
        assert_eq!(g.out_neighbors(0), &[2]);
    }

    #[test]
    fn multigraph_multiplicity() {
        let g = Digraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.arc_multiplicity(0, 1), 2);
        assert_eq!(g.arc_multiplicity(1, 0), 1);
        assert_eq!(g.arc_multiplicity(1, 1), 0);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 1));
    }

    #[test]
    fn loops_add_and_remove() {
        let g = cycle(3);
        assert_eq!(g.loop_count(), 0);
        let gp = g.with_loops();
        assert_eq!(gp.loop_count(), 3);
        assert_eq!(gp.arc_count(), 6);
        // Adding loops twice does not duplicate them.
        assert_eq!(gp.with_loops().arc_count(), 6);
        let back = gp.without_loops();
        assert!(back.same_arcs(&g));
    }

    #[test]
    fn reverse_involution() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let rr = g.reverse().reverse();
        assert!(g.same_arcs(&rr));
        assert_eq!(g.reverse().out_neighbors(2), &[1, 0]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (h, map) = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(h.node_count(), 3);
        // Arcs 2->3 and 3->0 survive, renumbered to 1->2 and 2->0.
        assert_eq!(h.sorted_arc_list(), vec![(1, 2), (2, 0)]);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], Some(2));
    }

    #[test]
    fn arc_lookup_and_errors() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.arc(1).unwrap(), Arc::new(1, 2));
        assert!(matches!(
            g.arc(5),
            Err(GraphError::ArcOutOfRange { arc: 5, m: 2 })
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::empty(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.max_out_degree(), 0);
        assert_eq!(g.min_out_degree(), 0);
    }

    #[test]
    fn same_arcs_detects_difference() {
        let g1 = Digraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = Digraph::from_edges(3, &[(1, 2), (0, 1)]);
        let g3 = Digraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert!(g1.same_arcs(&g2));
        assert!(!g1.same_arcs(&g3));
    }

    #[test]
    fn in_arc_ids_consistent() {
        let g = Digraph::from_edges(3, &[(0, 2), (1, 2), (0, 1)]);
        let ids = g.in_arc_ids(2);
        assert_eq!(ids.len(), 2);
        for &id in ids {
            assert_eq!(g.arc(id).unwrap().target, 2);
        }
    }
}
