//! Stack-graphs `ς(s, G)` (Definition 1 of the paper).
//!
//! A stack-graph is obtained by piling up `s` copies of a digraph `G` and
//! viewing each stack of arcs as a single hyperarc:
//!
//! * nodes are pairs `(i, v)` with `0 ≤ i < s` (the position in the stack)
//!   and `v` a node of `G`;
//! * the projection `π(i, v) = v` maps stack-graph nodes onto quotient nodes;
//! * every arc `(u, v)` of `G` becomes the hyperarc
//!   `(π⁻¹(u), π⁻¹(v))` — i.e. an OPS coupler whose inputs are all `s`
//!   processors of group `u` and whose outputs are all `s` processors of
//!   group `v`.
//!
//! The POPS network `POPS(t, g)` is `ς(t, K⁺_g)` and the stack-Kautz network
//! `SK(s, d, k)` is `ς(s, KG⁺(d, k))`; both are constructed in
//! `otis-topologies` on top of this type.

use crate::digraph::{Digraph, NodeId};
use crate::error::{invalid_parameter, GraphError};
use crate::hyper::{HyperArc, Hypergraph};

/// A node of a stack-graph, identified by its stack position and the quotient
/// node (processor group) it projects onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StackNode {
    /// Position inside the stack, `0 ≤ index < s`.  In network terms this is
    /// the label of the processor inside its group.
    pub index: usize,
    /// Node of the quotient digraph this node projects onto (the group label).
    pub group: NodeId,
}

impl StackNode {
    /// Creates a stack node from its in-group index and group label.
    pub fn new(index: usize, group: NodeId) -> Self {
        StackNode { index, group }
    }
}

/// The stack-graph `ς(s, G)` of stacking factor `s` over quotient digraph `G`.
#[derive(Debug, Clone)]
pub struct StackGraph {
    stacking_factor: usize,
    quotient: Digraph,
}

impl StackGraph {
    /// Builds `ς(s, quotient)`.  The stacking factor must be at least 1.
    pub fn new(stacking_factor: usize, quotient: Digraph) -> Result<Self, GraphError> {
        if stacking_factor == 0 {
            return Err(invalid_parameter("stacking factor s must be >= 1"));
        }
        Ok(StackGraph {
            stacking_factor,
            quotient,
        })
    }

    /// The stacking factor `s`.
    pub fn stacking_factor(&self) -> usize {
        self.stacking_factor
    }

    /// The quotient digraph `G`.
    pub fn quotient(&self) -> &Digraph {
        &self.quotient
    }

    /// Number of nodes `s · |V(G)|`.
    pub fn node_count(&self) -> usize {
        self.stacking_factor * self.quotient.node_count()
    }

    /// Number of hyperarcs, which equals the number of arcs of the quotient.
    pub fn hyperarc_count(&self) -> usize {
        self.quotient.arc_count()
    }

    /// Number of processor groups, `|V(G)|`.
    pub fn group_count(&self) -> usize {
        self.quotient.node_count()
    }

    /// The projection `π`: maps a flat node identifier to its quotient node.
    pub fn project(&self, node: NodeId) -> NodeId {
        self.to_stack_node(node).group
    }

    /// Converts a flat node identifier (`0 ..  s·|V|`) into a [`StackNode`].
    ///
    /// The paper's worked figures (Fig. 7, Fig. 12) number processors group by
    /// group — processor `(x, y)` gets flat id `x·s + y` — and this crate uses
    /// the same convention.
    pub fn to_stack_node(&self, node: NodeId) -> StackNode {
        assert!(node < self.node_count(), "node {node} out of range");
        StackNode {
            group: node / self.stacking_factor,
            index: node % self.stacking_factor,
        }
    }

    /// Converts a [`StackNode`] back to its flat identifier.
    pub fn to_flat(&self, node: StackNode) -> NodeId {
        assert!(node.index < self.stacking_factor, "index out of range");
        assert!(
            node.group < self.quotient.node_count(),
            "group out of range"
        );
        node.group * self.stacking_factor + node.index
    }

    /// The fibre `π⁻¹(group)`: flat identifiers of all nodes in a group.
    pub fn fiber(&self, group: NodeId) -> Vec<NodeId> {
        assert!(group < self.quotient.node_count(), "group out of range");
        (0..self.stacking_factor)
            .map(|i| group * self.stacking_factor + i)
            .collect()
    }

    /// Materialises the stack-graph as an explicit directed hypergraph: one
    /// hyperarc `(π⁻¹(u), π⁻¹(v))` per quotient arc `(u, v)`, in quotient-arc
    /// insertion order.
    pub fn to_hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.node_count());
        for arc in self.quotient.arcs() {
            let tail = self.fiber(arc.source);
            let head = self.fiber(arc.target);
            h.add_hyperarc(HyperArc::new(tail, head))
                .expect("fiber nodes are always in range");
        }
        h
    }

    /// Flattens to a plain digraph (every hyperarc replaced by the complete
    /// bipartite arc set).  Hop distances of the multi-OPS network are
    /// distances in this digraph.
    pub fn flatten(&self) -> Digraph {
        self.to_hypergraph().flatten()
    }

    /// Degree of a node: number of hyperarcs it can transmit on, which equals
    /// the out-degree of its group in the quotient.
    pub fn node_out_degree(&self, node: NodeId) -> usize {
        self.quotient.out_degree(self.project(node))
    }

    /// Diameter of the stack-graph (in hops).  When the quotient has a loop on
    /// every node and at least 2 stacked copies, this equals the quotient
    /// diameter computed over the loop-less quotient; in general it is the
    /// diameter of the flattened digraph, which is what this computes.
    pub fn diameter(&self) -> Option<u32> {
        crate::algorithms::diameter(&self.flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    /// Complete digraph with loops on g nodes — the quotient of a POPS network.
    fn k_plus(g: usize) -> Digraph {
        let mut b = DigraphBuilder::new(g);
        for u in 0..g {
            for v in 0..g {
                b.add_arc(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn stack_of_k_plus_2_matches_pops_4_2() {
        // Fig. 5 of the paper: POPS(4, 2) is ς(4, K⁺₂).
        let sg = StackGraph::new(4, k_plus(2)).unwrap();
        assert_eq!(sg.node_count(), 8);
        assert_eq!(sg.hyperarc_count(), 4);
        assert_eq!(sg.group_count(), 2);
        assert_eq!(sg.stacking_factor(), 4);
        // Single-hop network: diameter 1.
        assert_eq!(sg.diameter(), Some(1));
    }

    #[test]
    fn zero_stacking_factor_rejected() {
        let err = StackGraph::new(0, k_plus(2)).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn flat_and_stack_node_roundtrip() {
        let sg = StackGraph::new(6, k_plus(3)).unwrap();
        for flat in 0..sg.node_count() {
            let sn = sg.to_stack_node(flat);
            assert_eq!(sg.to_flat(sn), flat);
            assert_eq!(sg.project(flat), sn.group);
        }
    }

    #[test]
    fn fiber_contents() {
        let sg = StackGraph::new(3, k_plus(4)).unwrap();
        assert_eq!(sg.fiber(0), vec![0, 1, 2]);
        assert_eq!(sg.fiber(2), vec![6, 7, 8]);
        for &n in &sg.fiber(2) {
            assert_eq!(sg.project(n), 2);
        }
    }

    #[test]
    fn hypergraph_has_one_hyperarc_per_quotient_arc() {
        let quotient = Digraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sg = StackGraph::new(2, quotient).unwrap();
        let h = sg.to_hypergraph();
        assert_eq!(h.hyperarc_count(), 3);
        let a = h.hyperarc(0).unwrap();
        assert_eq!(a.tail, vec![0, 1]);
        assert_eq!(a.head, vec![2, 3]);
        assert_eq!(a.ops_degree(), Some(2));
    }

    #[test]
    fn node_degree_equals_quotient_out_degree() {
        let quotient = Digraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let sg = StackGraph::new(5, quotient).unwrap();
        for node in sg.fiber(0) {
            assert_eq!(sg.node_out_degree(node), 2);
        }
        for node in sg.fiber(2) {
            assert_eq!(sg.node_out_degree(node), 0);
        }
    }

    #[test]
    fn diameter_of_stacked_cycle() {
        // Quotient: directed triangle with loops. Stack of 2.
        // Any node reaches any node of the "next" group in 1 hop, its own
        // group in 1 hop (via the loop coupler), the third group in 2 hops.
        let quotient = Digraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).with_loops();
        let sg = StackGraph::new(2, quotient).unwrap();
        assert_eq!(sg.diameter(), Some(2));
    }

    #[test]
    fn stacking_factor_one_flatten_recovers_quotient_arcs() {
        let quotient = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sg = StackGraph::new(1, quotient.clone()).unwrap();
        assert!(sg.flatten().same_arcs(&quotient));
    }
}
