//! The stack-Imase–Itoh network `SII(s, d, n)`.
//!
//! The paper notes (end of §2.7) that the definition of the stack-Kautz
//! network "can be trivially extended to the stack-Imase-Itoh network": take
//! the Imase–Itoh graph with a loop added at every node, `II⁺(d, n)`, as the
//! quotient and stack `s` copies.  Because `II(d, n)` exists for every `n`,
//! this yields multi-hop multi-OPS networks of **any** number of groups,
//! which is the practical reason to prefer it when the processor count does
//! not match a Kautz size.

use crate::imase_itoh::{imase_itoh, ImaseItoh};
use otis_graphs::{Hypergraph, StackGraph, StackNode};

/// The stack-Imase–Itoh network `SII(s, d, n) = ς(s, II⁺(d, n))`.
#[derive(Debug, Clone)]
pub struct StackImaseItoh {
    s: usize,
    d: usize,
    n: usize,
    ii: ImaseItoh,
    stack: StackGraph,
}

impl StackImaseItoh {
    /// Builds `SII(s, d, n)`; all parameters must be at least 1.
    pub fn new(s: usize, d: usize, n: usize) -> Self {
        assert!(s >= 1, "stacking factor s must be >= 1");
        assert!(
            d >= 1 && n >= 1,
            "Imase-Itoh parameters must satisfy d >= 1, n >= 1"
        );
        let quotient = imase_itoh(d, n).with_loops();
        let stack = StackGraph::new(s, quotient).expect("s >= 1 was checked");
        StackImaseItoh {
            s,
            d,
            n,
            ii: ImaseItoh::new(d, n),
            stack,
        }
    }

    /// Stacking factor `s` (group size and coupler degree).
    pub fn stacking_factor(&self) -> usize {
        self.s
    }

    /// Imase–Itoh degree `d`; processors have network degree at most `d + 1`.
    pub fn ii_degree(&self) -> usize {
        self.d
    }

    /// Number of processor groups `n`.
    pub fn group_count(&self) -> usize {
        self.n
    }

    /// Total number of processors `s·n`.
    pub fn node_count(&self) -> usize {
        self.s * self.n
    }

    /// Number of OPS couplers (arcs of `II⁺(d, n)`).
    pub fn coupler_count(&self) -> usize {
        self.stack.quotient().arc_count()
    }

    /// The stack-graph model.
    pub fn stack_graph(&self) -> &StackGraph {
        &self.stack
    }

    /// The quotient Imase–Itoh handle (without the added loops).
    pub fn imase_itoh(&self) -> &ImaseItoh {
        &self.ii
    }

    /// The hypergraph with one hyperarc per OPS coupler.
    pub fn hypergraph(&self) -> Hypergraph {
        self.stack.to_hypergraph()
    }

    /// Flat identifier of processor `(group, index)`.
    pub fn processor(&self, group: usize, index: usize) -> usize {
        self.stack.to_flat(StackNode::new(index, group))
    }

    /// The `(group, index)` label of a flat processor identifier.
    pub fn processor_label(&self, node: usize) -> (usize, usize) {
        let sn = self.stack.to_stack_node(node);
        (sn.group, sn.index)
    }

    /// Diameter of the network in optical hops.
    pub fn diameter(&self) -> Option<u32> {
        self.stack.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imase_itoh::imase_itoh_diameter_bound;
    use crate::stack_kautz::StackKautz;

    #[test]
    fn basic_counts() {
        let sii = StackImaseItoh::new(4, 3, 10);
        assert_eq!(sii.node_count(), 40);
        assert_eq!(sii.group_count(), 10);
        assert_eq!(sii.stacking_factor(), 4);
        // II⁺(3,10) has one arc per II arc plus one loop per node that does
        // not already carry one.
        let ii = sii.imase_itoh().graph();
        let expected = ii.arc_count() + (ii.node_count() - ii.loop_count());
        assert_eq!(sii.coupler_count(), expected);
    }

    #[test]
    fn exists_for_any_group_count() {
        // Group counts that are NOT Kautz sizes.
        for n in [5usize, 7, 9, 11, 13, 17] {
            let sii = StackImaseItoh::new(2, 2, n);
            assert_eq!(sii.group_count(), n);
            assert!(sii.diameter().is_some(), "SII(2,2,{n}) must be connected");
        }
    }

    #[test]
    fn diameter_within_log_bound() {
        for (s, d, n) in [(2, 2, 9), (3, 3, 20), (2, 4, 33)] {
            let sii = StackImaseItoh::new(s, d, n);
            let dia = sii.diameter().unwrap();
            assert!(dia <= imase_itoh_diameter_bound(d, n));
        }
    }

    #[test]
    fn matches_stack_kautz_at_kautz_sizes() {
        // At n = d^(k-1)(d+1) the SII and SK networks have identical
        // group counts, coupler counts and diameters.
        let sk = StackKautz::new(3, 2, 3);
        let sii = StackImaseItoh::new(3, 2, 12);
        assert_eq!(sii.node_count(), sk.node_count());
        assert_eq!(sii.coupler_count(), sk.coupler_count());
        assert_eq!(sii.diameter(), sk.diameter());
    }

    #[test]
    fn processor_labels_roundtrip() {
        let sii = StackImaseItoh::new(3, 2, 7);
        for node in 0..sii.node_count() {
            let (g, y) = sii.processor_label(node);
            assert_eq!(sii.processor(g, y), node);
        }
    }

    #[test]
    fn coupler_degree_is_stacking_factor() {
        let sii = StackImaseItoh::new(5, 2, 6);
        let h = sii.hypergraph();
        for c in 0..h.hyperarc_count() {
            assert_eq!(h.hyperarc(c).unwrap().ops_degree(), Some(5));
        }
    }

    #[test]
    #[should_panic(expected = "s must be >= 1")]
    fn zero_stacking_factor_panics() {
        StackImaseItoh::new(0, 2, 5);
    }
}
