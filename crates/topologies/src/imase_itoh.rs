//! Imase–Itoh graphs `II(d, n)`.
//!
//! Definition 3 of the paper: nodes are the integers modulo `n`, and there is
//! an arc from `u` to every `v ≡ (−d·u − α) mod n` for `1 ≤ α ≤ d`.
//! `II(d, n)` has constant out-degree (and in-degree) `d`, diameter
//! `⌈log_d n⌉`, and — crucially for the paper — `II(d, d^(k-1)(d+1))` *is*
//! the Kautz graph `KG(d, k)`, which is how the OTIS realization of
//! Imase–Itoh graphs (Proposition 1) transfers to Kautz graphs
//! (Corollary 1).
//!
//! Unlike the Kautz family, `II(d, n)` is defined for **every** `n`, which is
//! why Imase and Itoh introduced it: it gives near-optimal (d, k) digraphs of
//! arbitrary size.  For some small `n` the construction produces loops or
//! parallel arcs; they are kept (the graph is then a multidigraph), matching
//! the congruence definition.

use otis_graphs::{Digraph, DigraphBuilder};

/// Out-neighbours of node `u` in `II(d, n)`, in the order `α = 1, 2, …, d`:
/// `v_α ≡ (−d·u − α) mod n`.
///
/// This α-order is exactly the order in which the OTIS design of
/// Proposition 1 wires the `d` transmitters of node `u`, so the α-th
/// out-neighbour here corresponds to the α-th OTIS input associated with `u`.
pub fn imase_itoh_neighbors(d: usize, n: usize, u: usize) -> Vec<usize> {
    assert!(d >= 1, "degree d must be >= 1");
    assert!(n >= 1, "node count n must be >= 1");
    assert!(u < n, "node {u} out of range for n = {n}");
    (1..=d)
        .map(|alpha| {
            // Compute (-(d*u) - alpha) mod n without underflow using i128
            // (d·u + α can exceed u64 for the largest sweeps we allow).
            let s = (d as i128) * (u as i128) + (alpha as i128);
            let m = n as i128;
            let r = ((-s) % m + m) % m;
            r as usize
        })
        .collect()
}

/// Builds the Imase–Itoh graph `II(d, n)`.
pub fn imase_itoh(d: usize, n: usize) -> Digraph {
    assert!(d >= 1, "degree d must be >= 1");
    assert!(n >= 1, "node count n must be >= 1");
    let mut b = DigraphBuilder::with_capacity(n, n * d);
    for u in 0..n {
        for v in imase_itoh_neighbors(d, n, u) {
            b.add_arc(u, v);
        }
    }
    b.build()
}

/// The diameter guaranteed by Imase and Itoh: `⌈log_d n⌉`.
pub fn imase_itoh_diameter_bound(d: usize, n: usize) -> u32 {
    assert!(d >= 2, "the log_d bound needs d >= 2");
    assert!(n >= 1);
    // Smallest k with d^k >= n.
    let mut k = 0u32;
    let mut power = 1usize;
    while power < n {
        power = power.saturating_mul(d);
        k += 1;
    }
    k
}

/// Convenience handle bundling the parameters and the constructed digraph.
#[derive(Debug, Clone)]
pub struct ImaseItoh {
    d: usize,
    n: usize,
    graph: Digraph,
}

impl ImaseItoh {
    /// Constructs `II(d, n)`.
    pub fn new(d: usize, n: usize) -> Self {
        ImaseItoh {
            d,
            n,
            graph: imase_itoh(d, n),
        }
    }

    /// Degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The α-th out-neighbour (1-based α as in the paper).
    pub fn neighbor(&self, u: usize, alpha: usize) -> usize {
        assert!((1..=self.d).contains(&alpha), "alpha must be in 1..=d");
        imase_itoh_neighbors(self.d, self.n, u)[alpha - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kautz::{kautz, kautz_node_count};
    use otis_graphs::algorithms::{diameter, is_strongly_connected};
    use otis_graphs::are_isomorphic;

    #[test]
    fn neighbor_formula_small() {
        // II(3, 12), node 0: v = (-0 - alpha) mod 12 = 12 - alpha.
        assert_eq!(imase_itoh_neighbors(3, 12, 0), vec![11, 10, 9]);
        // Node 1: v = (-3 - alpha) mod 12.
        assert_eq!(imase_itoh_neighbors(3, 12, 1), vec![8, 7, 6]);
        // Node 11: -33 - alpha mod 12 = (-33-1)=-34 mod 12 = 2, then 1, 0.
        assert_eq!(imase_itoh_neighbors(3, 12, 11), vec![2, 1, 0]);
    }

    #[test]
    fn regular_degree_and_size() {
        for (d, n) in [(2, 7), (3, 12), (3, 17), (4, 30), (2, 25)] {
            let g = imase_itoh(d, n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.arc_count(), n * d);
            // Out-degree is d by construction; in-degree is d too because the
            // map α ↦ (−d·u − α) partitions Z_n evenly.
            for u in 0..n {
                assert_eq!(g.out_degree(u), d);
                assert_eq!(g.in_degree(u), d);
            }
        }
    }

    #[test]
    fn diameter_within_bound() {
        for (d, n) in [(2, 7), (2, 12), (3, 12), (3, 20), (4, 50), (5, 100)] {
            let g = imase_itoh(d, n);
            assert!(
                is_strongly_connected(&g),
                "II({d},{n}) must be strongly connected"
            );
            let dia = diameter(&g).unwrap();
            let bound = imase_itoh_diameter_bound(d, n);
            assert!(
                dia <= bound,
                "II({d},{n}) diameter {dia} exceeds ceil(log_d n) = {bound}"
            );
        }
    }

    #[test]
    fn ii_at_kautz_size_is_kautz() {
        // §2.6: II(d, d^(k-1)(d+1)) is the Kautz graph KG(d, k).
        for (d, k) in [(2, 2), (2, 3), (3, 2)] {
            let n = kautz_node_count(d, k);
            let ii = imase_itoh(d, n);
            let kg = kautz(d, k);
            assert!(
                are_isomorphic(&ii, &kg),
                "II({d},{n}) should be KG({d},{k})"
            );
        }
    }

    #[test]
    fn ii_3_12_is_kautz_3_2_with_same_diameter() {
        let g = imase_itoh(3, 12);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(g.loop_count(), 0);
    }

    #[test]
    fn small_n_allows_loops_and_multiarcs() {
        // II(2, 3): u=1 has neighbours (-2-1)=0, (-2-2)=2... let's just check
        // the defining congruence holds for every arc.
        for (d, n) in [(2, 3), (3, 4), (2, 2), (3, 5)] {
            let g = imase_itoh(d, n);
            for u in 0..n {
                let nbrs = imase_itoh_neighbors(d, n, u);
                assert_eq!(g.out_neighbors(u), nbrs.as_slice());
                for (i, &v) in nbrs.iter().enumerate() {
                    let alpha = i + 1;
                    assert_eq!(
                        (v + d * u + alpha) % n,
                        0,
                        "arc ({u},{v}) violates v ≡ -du-α (mod {n})"
                    );
                }
            }
        }
    }

    #[test]
    fn handle_accessors() {
        let ii = ImaseItoh::new(3, 12);
        assert_eq!(ii.degree(), 3);
        assert_eq!(ii.node_count(), 12);
        assert_eq!(ii.neighbor(0, 1), 11);
        assert_eq!(ii.neighbor(0, 3), 9);
        assert_eq!(ii.graph().arc_count(), 36);
    }

    #[test]
    fn diameter_bound_values() {
        assert_eq!(imase_itoh_diameter_bound(2, 1), 0);
        assert_eq!(imase_itoh_diameter_bound(2, 2), 1);
        assert_eq!(imase_itoh_diameter_bound(2, 8), 3);
        assert_eq!(imase_itoh_diameter_bound(2, 9), 4);
        assert_eq!(imase_itoh_diameter_bound(3, 12), 3);
        assert_eq!(imase_itoh_diameter_bound(10, 1000), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbor_out_of_range_panics() {
        imase_itoh_neighbors(2, 5, 5);
    }
}
