//! # otis-topologies
//!
//! Graph-theoretic topology families used by the OTIS lightwave-network
//! reproduction:
//!
//! * point-to-point digraph families: complete digraphs `K_n` / `K⁺_n`,
//!   Kautz graphs `KG(d, k)` (both by word labels and by line-digraph
//!   iteration), Imase–Itoh graphs `II(d, n)`, de Bruijn graphs `B(d, k)`,
//!   hypercubes, multi-dimensional meshes, mesh-of-trees and butterflies
//!   (the families that Zane et al. realise with OTIS and that serve as
//!   comparison points);
//! * multi-OPS (hypergraph) families built as stack-graphs: the single-hop
//!   `POPS(t, g)` network and the multi-hop `SK(s, d, k)` stack-Kautz and
//!   `SII(s, d, n)` stack-Imase–Itoh networks;
//! * the directed Moore bound, used to quantify how close Kautz/Imase–Itoh
//!   graphs are to the densest possible digraphs of given degree and
//!   diameter.
//!
//! All families return plain [`otis_graphs::Digraph`] / [`otis_graphs::StackGraph`]
//! values so the algorithms of `otis-graphs` apply uniformly.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod butterfly;
pub mod complete;
pub mod de_bruijn;
pub mod hypercube;
pub mod imase_itoh;
pub mod kautz;
pub mod labels;
pub mod mesh;
pub mod mesh_of_trees;
pub mod moore;
pub mod pops;
pub mod stack_imase_itoh;
pub mod stack_kautz;
pub mod summary;

pub use complete::{complete_digraph, complete_digraph_with_loops};
pub use de_bruijn::de_bruijn;
pub use imase_itoh::{imase_itoh, imase_itoh_neighbors, ImaseItoh};
pub use kautz::{kautz, kautz_by_line_digraph, kautz_node_count, kautz_with_loops, Kautz};
pub use labels::KautzWord;
pub use moore::{kautz_bound, moore_bound};
pub use pops::Pops;
pub use stack_imase_itoh::StackImaseItoh;
pub use stack_kautz::StackKautz;
pub use summary::TopologySummary;
