//! Complete digraphs `K_n` and `K⁺_n`.
//!
//! `K⁺_g` (complete digraph with loops on `g` nodes, `g²` arcs) is the
//! quotient of the POPS network: `POPS(t, g) = ς(t, K⁺_g)` (§2.4 of the
//! paper).  `K_{d+1}` (no loops) is the base case of the Kautz family:
//! `KG(d, 1) = K_{d+1}`.

use otis_graphs::{Digraph, DigraphBuilder};

/// The complete digraph `K_n` **without** loops: `n` nodes, `n(n-1)` arcs.
pub fn complete_digraph(n: usize) -> Digraph {
    let mut b = DigraphBuilder::with_capacity(n, n.saturating_mul(n.saturating_sub(1)));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_arc(u, v);
            }
        }
    }
    b.build()
}

/// The complete digraph `K⁺_n` **with** loops: `n` nodes, `n²` arcs.
///
/// Arcs are inserted in row-major order `(u, v)` for `u` then `v` increasing,
/// so the arc with identifier `u·n + v` goes from `u` to `v`; the POPS design
/// relies on this to label OPS couplers by the pair `(source group, target
/// group)` exactly as the paper does.
pub fn complete_digraph_with_loops(n: usize) -> Digraph {
    let mut b = DigraphBuilder::with_capacity(n, n.saturating_mul(n));
    for u in 0..n {
        for v in 0..n {
            b.add_arc(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_eulerian, is_strongly_connected};

    #[test]
    fn complete_counts() {
        for n in 1..8 {
            let g = complete_digraph(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.arc_count(), n * (n - 1));
            assert_eq!(g.loop_count(), 0);
            assert!(g.is_d_regular(n - 1));
        }
    }

    #[test]
    fn complete_with_loops_counts() {
        for n in 1..8 {
            let g = complete_digraph_with_loops(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.arc_count(), n * n);
            assert_eq!(g.loop_count(), n);
            assert!(g.is_d_regular(n));
        }
    }

    #[test]
    fn arc_identifier_encodes_group_pair() {
        let g = complete_digraph_with_loops(4);
        for u in 0..4 {
            for v in 0..4 {
                let arc = g.arc(u * 4 + v).unwrap();
                assert_eq!((arc.source, arc.target), (u, v));
            }
        }
    }

    #[test]
    fn complete_is_diameter_one_and_eulerian() {
        let g = complete_digraph(5);
        assert_eq!(diameter(&g), Some(1));
        assert!(is_strongly_connected(&g));
        assert!(is_eulerian(&g));
    }

    #[test]
    fn k1_edge_cases() {
        assert_eq!(complete_digraph(1).arc_count(), 0);
        assert_eq!(complete_digraph_with_loops(1).arc_count(), 1);
        assert_eq!(complete_digraph(0).node_count(), 0);
    }
}
