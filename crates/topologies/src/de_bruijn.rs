//! de Bruijn digraphs `B(d, k)`.
//!
//! The de Bruijn graph is the classic single-OPS / WDM lightwave-network
//! topology (Sivarajan & Ramaswami, ref [22] of the paper) and is the natural
//! baseline against which the Kautz-based designs are compared: for the same
//! degree `d` and diameter `k`, `B(d, k)` has `d^k` nodes, slightly fewer
//! than the `d^k + d^(k-1)` of `KG(d, k)`.
//!
//! Nodes are the words of length `k` over `{0, …, d−1}` (equivalently the
//! integers `0 .. d^k`), with an arc from `u` to every `v ≡ (d·u + α) mod
//! d^k`, `0 ≤ α < d` — the shift-register construction.

use otis_graphs::{Digraph, DigraphBuilder};

/// Number of nodes of `B(d, k)`: `d^k`.
pub fn de_bruijn_node_count(d: usize, k: usize) -> usize {
    assert!(
        d >= 1 && k >= 1,
        "de Bruijn parameters must satisfy d >= 1, k >= 1"
    );
    d.pow(k as u32)
}

/// Builds the de Bruijn digraph `B(d, k)`.
///
/// Loops are present (at the all-same-letter words), matching the standard
/// definition.
pub fn de_bruijn(d: usize, k: usize) -> Digraph {
    let n = de_bruijn_node_count(d, k);
    let mut b = DigraphBuilder::with_capacity(n, n * d);
    for u in 0..n {
        for alpha in 0..d {
            b.add_arc(u, (d * u + alpha) % n);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kautz::kautz_node_count;
    use otis_graphs::algorithms::{diameter, is_strongly_connected};
    use otis_graphs::are_isomorphic;
    use otis_graphs::line_digraph::line_digraph;

    #[test]
    fn counts_and_regularity() {
        for (d, k) in [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)] {
            let g = de_bruijn(d, k);
            assert_eq!(g.node_count(), de_bruijn_node_count(d, k));
            assert_eq!(g.arc_count(), g.node_count() * d);
            assert!(g.is_d_regular(d));
        }
    }

    #[test]
    fn diameter_is_k() {
        for (d, k) in [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3)] {
            assert_eq!(diameter(&de_bruijn(d, k)), Some(k as u32));
        }
    }

    #[test]
    fn has_exactly_d_loops() {
        // The words 00…0, 11…1, …, (d-1)(d-1)…(d-1) carry loops.
        for (d, k) in [(2, 3), (3, 2), (4, 2)] {
            assert_eq!(de_bruijn(d, k).loop_count(), d);
        }
    }

    #[test]
    fn strongly_connected() {
        assert!(is_strongly_connected(&de_bruijn(2, 5)));
        assert!(is_strongly_connected(&de_bruijn(3, 3)));
    }

    #[test]
    fn line_digraph_of_de_bruijn_is_de_bruijn() {
        // B(d, k+1) = L(B(d, k)).
        for (d, k) in [(2, 2), (2, 3), (3, 2)] {
            let l = line_digraph(&de_bruijn(d, k));
            assert!(are_isomorphic(&l, &de_bruijn(d, k + 1)));
        }
    }

    #[test]
    fn kautz_beats_de_bruijn_in_node_count() {
        // Same degree and diameter: KG has d^(k-1) more nodes.
        for (d, k) in [(2, 3), (3, 2), (4, 3), (5, 4)] {
            assert_eq!(
                kautz_node_count(d, k),
                de_bruijn_node_count(d, k) + d.pow((k - 1) as u32)
            );
        }
    }
}
