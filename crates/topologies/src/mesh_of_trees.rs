//! Mesh-of-trees networks.
//!
//! Another family realized with OTIS by Zane et al. (ref [24]).  The
//! `n × n` mesh-of-trees consists of an `n × n` grid of leaf processors, a
//! complete binary tree over every row and a complete binary tree over every
//! column (internal tree nodes are distinct between rows and columns); `n`
//! must be a power of two.
//!
//! Node numbering: the `n²` leaves come first in row-major order, then the
//! `n·(n−1)` row-tree internal nodes (row by row, heap order), then the
//! `n·(n−1)` column-tree internal nodes.  All tree edges are modelled as two
//! opposite arcs.

use otis_graphs::{Digraph, DigraphBuilder};

/// Total number of nodes of the `n × n` mesh-of-trees:
/// `n² + 2·n·(n−1)` (leaves plus row-tree and column-tree internal nodes).
pub fn mesh_of_trees_node_count(n: usize) -> usize {
    n * n + 2 * n * (n - 1)
}

/// Builds the `n × n` mesh-of-trees; `n` must be a power of two and ≥ 2.
pub fn mesh_of_trees(n: usize) -> Digraph {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "mesh-of-trees requires n a power of two, n >= 2"
    );
    let leaves = n * n;
    let internal_per_tree = n - 1;
    let row_base = leaves;
    let col_base = leaves + n * internal_per_tree;
    let total = mesh_of_trees_node_count(n);
    let mut b = DigraphBuilder::new(total);

    // Internal nodes of a tree are heap-indexed 1..n-1 relative to the tree
    // base; node j's children are 2j and 2j+1 (children >= n/?); the leaves of
    // the tree are the n grid cells of that row/column.
    // We use the standard complete-binary-tree-over-n-leaves indexing where
    // internal node j (1-based, 1..n-1) has children 2j and 2j+1 among
    // internal nodes when 2j <= n-1, otherwise the children are leaves
    // 2j - n and 2j + 1 - n (0-based leaf positions).
    let connect_tree =
        |tree_base: usize, leaf_of: &dyn Fn(usize) -> usize, b: &mut DigraphBuilder| {
            for j in 1..n {
                let parent = tree_base + (j - 1);
                for child in [2 * j, 2 * j + 1] {
                    let child_node = if child < n {
                        tree_base + (child - 1)
                    } else {
                        leaf_of(child - n)
                    };
                    b.add_arc(parent, child_node);
                    b.add_arc(child_node, parent);
                }
            }
        };

    for row in 0..n {
        let tree_base = row_base + row * internal_per_tree;
        let leaf_of = move |pos: usize| row * n + pos;
        connect_tree(tree_base, &leaf_of, &mut b);
    }
    for col in 0..n {
        let tree_base = col_base + col * internal_per_tree;
        let leaf_of = move |pos: usize| pos * n + col;
        connect_tree(tree_base, &leaf_of, &mut b);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_strongly_connected};

    #[test]
    fn node_counts() {
        assert_eq!(mesh_of_trees_node_count(2), 8);
        assert_eq!(mesh_of_trees_node_count(4), 40);
        assert_eq!(mesh_of_trees_node_count(8), 176);
        for n in [2usize, 4, 8] {
            assert_eq!(mesh_of_trees(n).node_count(), mesh_of_trees_node_count(n));
        }
    }

    #[test]
    fn arc_counts() {
        // Each of the 2n trees over n leaves has 2(n-1) edges => 4 arcs each... precisely
        // 2n trees * (2(n-1)) edges * 2 arcs per edge.
        for n in [2usize, 4, 8] {
            let g = mesh_of_trees(n);
            assert_eq!(g.arc_count(), 2 * n * 2 * (n - 1) * 2);
        }
    }

    #[test]
    fn connected_and_symmetric() {
        let g = mesh_of_trees(4);
        assert!(is_strongly_connected(&g));
        for a in g.arcs() {
            assert!(g.has_arc(a.target, a.source));
        }
    }

    #[test]
    fn leaves_have_degree_two_roots_and_internals_higher() {
        let n = 4;
        let g = mesh_of_trees(n);
        // Every leaf belongs to one row tree and one column tree: degree 2.
        for leaf in 0..n * n {
            assert_eq!(g.out_degree(leaf), 2, "leaf {leaf}");
        }
        // Tree roots have degree 2, other internal nodes degree 3.
        let row_base = n * n;
        for t in 0..2 * n {
            let base = row_base + t * (n - 1);
            assert_eq!(g.out_degree(base), 2, "root of tree {t}");
            for j in 1..n - 1 {
                assert_eq!(g.out_degree(base + j), 3, "internal node {j} of tree {t}");
            }
        }
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Leaf -> row root -> leaf -> column root -> leaf: 4·log2(n).
        let g = mesh_of_trees(4);
        assert_eq!(diameter(&g), Some(8));
        let g2 = mesh_of_trees(2);
        assert_eq!(diameter(&g2), Some(4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        mesh_of_trees(6);
    }
}
