//! Uniform property summaries of topologies.
//!
//! The reproduction harness prints property tables (experiments T1, T2, F7)
//! for many different families; [`TopologySummary`] is the common row format:
//! name, node count, arc/coupler count, degree, measured diameter, and the
//! matching closed-form prediction when one exists.

use otis_graphs::algorithms::{average_distance, diameter, is_strongly_connected};
use otis_graphs::{Digraph, StackGraph};

/// A uniform summary row describing one topology instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Human-readable name, e.g. `"KG(3,2)"`.
    pub name: String,
    /// Number of nodes (processors).
    pub nodes: usize,
    /// Number of arcs (point-to-point) or hyperarcs/couplers (multi-OPS).
    pub links: usize,
    /// Maximum out-degree of a node.
    pub degree: usize,
    /// Measured diameter, `None` when not strongly connected.
    pub diameter: Option<u32>,
    /// Closed-form diameter predicted by the paper, when applicable.
    pub predicted_diameter: Option<u32>,
    /// Average inter-node distance, `None` when not strongly connected.
    pub average_distance: Option<f64>,
    /// Whether the topology is strongly connected.
    pub strongly_connected: bool,
}

impl TopologySummary {
    /// Summarises a point-to-point digraph.
    pub fn of_digraph(
        name: impl Into<String>,
        g: &Digraph,
        predicted_diameter: Option<u32>,
    ) -> Self {
        TopologySummary {
            name: name.into(),
            nodes: g.node_count(),
            links: g.arc_count(),
            degree: g.max_out_degree(),
            diameter: diameter(g),
            predicted_diameter,
            average_distance: average_distance(g),
            strongly_connected: is_strongly_connected(g),
        }
    }

    /// Summarises a multi-OPS network given as a stack-graph; the degree
    /// reported is the processor degree (number of couplers a processor can
    /// transmit on) and the link count is the number of couplers.
    pub fn of_stack_graph(
        name: impl Into<String>,
        sg: &StackGraph,
        predicted_diameter: Option<u32>,
    ) -> Self {
        let flat = sg.flatten();
        let degree = (0..sg.node_count())
            .map(|u| sg.node_out_degree(u))
            .max()
            .unwrap_or(0);
        TopologySummary {
            name: name.into(),
            nodes: sg.node_count(),
            links: sg.hyperarc_count(),
            degree,
            diameter: diameter(&flat),
            predicted_diameter,
            average_distance: average_distance(&flat),
            strongly_connected: is_strongly_connected(&flat),
        }
    }

    /// Returns `true` when the measured diameter matches the closed-form
    /// prediction (or when no prediction was supplied).
    pub fn diameter_matches_prediction(&self) -> bool {
        match (self.diameter, self.predicted_diameter) {
            (Some(measured), Some(predicted)) => measured == predicted,
            (_, None) => true,
            (None, Some(_)) => false,
        }
    }

    /// Formats the summary as one row of a fixed-width text table.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<18} {:>8} {:>8} {:>6} {:>9} {:>10} {:>10.3}",
            self.name,
            self.nodes,
            self.links,
            self.degree,
            self.diameter.map_or("-".to_string(), |d| d.to_string()),
            self.predicted_diameter
                .map_or("-".to_string(), |d| d.to_string()),
            self.average_distance.unwrap_or(f64::NAN),
        )
    }

    /// The header line matching [`TopologySummary::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>8} {:>8} {:>6} {:>9} {:>10} {:>10}",
            "topology", "nodes", "links", "degree", "diameter", "predicted", "avg dist"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kautz::kautz;
    use crate::pops::Pops;

    #[test]
    fn digraph_summary() {
        let g = kautz(3, 2);
        let s = TopologySummary::of_digraph("KG(3,2)", &g, Some(2));
        assert_eq!(s.nodes, 12);
        assert_eq!(s.links, 36);
        assert_eq!(s.degree, 3);
        assert_eq!(s.diameter, Some(2));
        assert!(s.strongly_connected);
        assert!(s.diameter_matches_prediction());
    }

    #[test]
    fn stack_graph_summary() {
        let p = Pops::new(4, 2);
        let s = TopologySummary::of_stack_graph("POPS(4,2)", p.stack_graph(), Some(1));
        assert_eq!(s.nodes, 8);
        assert_eq!(s.links, 4);
        assert_eq!(s.degree, 2);
        assert_eq!(s.diameter, Some(1));
        assert!(s.diameter_matches_prediction());
    }

    #[test]
    fn prediction_mismatch_detected() {
        let g = kautz(2, 3);
        let s = TopologySummary::of_digraph("KG(2,3)", &g, Some(7));
        assert!(!s.diameter_matches_prediction());
    }

    #[test]
    fn table_row_formats() {
        let g = kautz(2, 2);
        let s = TopologySummary::of_digraph("KG(2,2)", &g, Some(2));
        let row = s.as_table_row();
        assert!(row.contains("KG(2,2)"));
        assert!(row.contains('6'));
        assert!(TopologySummary::table_header().contains("diameter"));
    }

    #[test]
    fn disconnected_graph_summary() {
        let g = Digraph::from_edges(3, &[(0, 1)]);
        let s = TopologySummary::of_digraph("broken", &g, Some(1));
        assert_eq!(s.diameter, None);
        assert!(!s.strongly_connected);
        assert!(!s.diameter_matches_prediction());
        assert!(s.as_table_row().contains('-'));
    }
}
