//! The stack-Kautz network `SK(s, d, k)`.
//!
//! Definition 4 of the paper: `SK(s, d, k) = ς(s, KG⁺(d, k))` — the
//! stack-graph of stacking factor `s` over the Kautz graph with loops.  It is
//! a **multi-hop multi-OPS** network with
//!
//! * `N = s · d^(k-1) · (d+1)` processors,
//! * `d^(k-1)(d+1)` groups of `s` processors,
//! * `d^(k-1)(d+1)·(d+1)` OPS couplers of degree `s` (one per arc of
//!   `KG⁺(d, k)`, i.e. `d` "Kautz" couplers plus one "loop" coupler per
//!   group),
//! * node degree `d + 1` (each processor can transmit on the couplers of the
//!   `d` Kautz out-arcs of its group plus the loop coupler of its group),
//! * diameter `k` (inherited from the Kautz quotient).
//!
//! Each processor is labelled `(x, y)` where `x` is a Kautz word (the group)
//! and `0 ≤ y < s` the index within the group.

use crate::kautz::{kautz_node_count, kautz_with_loops, Kautz};
use crate::labels::KautzWord;
use otis_graphs::{Hypergraph, StackGraph, StackNode};

/// The stack-Kautz network `SK(s, d, k)`.
#[derive(Debug, Clone)]
pub struct StackKautz {
    s: usize,
    d: usize,
    k: usize,
    kautz: Kautz,
    stack: StackGraph,
}

impl StackKautz {
    /// Builds `SK(s, d, k)`; all three parameters must be at least 1.
    pub fn new(s: usize, d: usize, k: usize) -> Self {
        assert!(s >= 1, "stacking factor s must be >= 1");
        assert!(
            d >= 1 && k >= 1,
            "Kautz parameters must satisfy d >= 1, k >= 1"
        );
        let quotient = kautz_with_loops(d, k);
        let stack = StackGraph::new(s, quotient).expect("s >= 1 was checked");
        StackKautz {
            s,
            d,
            k,
            kautz: Kautz::new(d, k),
            stack,
        }
    }

    /// Stacking factor `s` (group size, also the OPS coupler degree).
    pub fn stacking_factor(&self) -> usize {
        self.s
    }

    /// Kautz degree `d`; processors have network degree `d + 1`.
    pub fn kautz_degree(&self) -> usize {
        self.d
    }

    /// Diameter parameter `k`.
    pub fn diameter_parameter(&self) -> usize {
        self.k
    }

    /// Total number of processors `s·d^(k-1)(d+1)`.
    pub fn node_count(&self) -> usize {
        self.s * kautz_node_count(self.d, self.k)
    }

    /// Number of processor groups, `d^(k-1)(d+1)`.
    pub fn group_count(&self) -> usize {
        kautz_node_count(self.d, self.k)
    }

    /// Number of OPS couplers: one per arc of `KG⁺(d, k)`, i.e.
    /// `d^(k-1)(d+1)·(d+1)`.
    pub fn coupler_count(&self) -> usize {
        self.group_count() * (self.d + 1)
    }

    /// Degree of every processor: `d + 1` (its group's `d` Kautz couplers
    /// plus the loop coupler).
    pub fn node_degree(&self) -> usize {
        self.d + 1
    }

    /// The stack-graph `ς(s, KG⁺(d, k))`.
    pub fn stack_graph(&self) -> &StackGraph {
        &self.stack
    }

    /// The Kautz handle of the quotient (without loops) for label lookups.
    pub fn kautz(&self) -> &Kautz {
        &self.kautz
    }

    /// The hypergraph with one hyperarc per OPS coupler, in the arc order of
    /// `KG⁺(d, k)` (the `d` Kautz arcs of group 0 first, …, loops last).
    pub fn hypergraph(&self) -> Hypergraph {
        self.stack.to_hypergraph()
    }

    /// Flat identifier of processor `(group, index)`.
    pub fn processor(&self, group: usize, index: usize) -> usize {
        self.stack.to_flat(StackNode::new(index, group))
    }

    /// The `(group, index)` label of a flat processor identifier.
    pub fn processor_label(&self, node: usize) -> (usize, usize) {
        let sn = self.stack.to_stack_node(node);
        (sn.group, sn.index)
    }

    /// The Kautz word of a processor's group.
    pub fn group_word(&self, node: usize) -> KautzWord {
        self.kautz.label(self.processor_label(node).0)
    }

    /// Diameter of the network in optical hops.  Inherited from the Kautz
    /// quotient: `k` (for `s ≥ 2` the loop couplers make same-group
    /// communication a single hop, so the diameter never exceeds `k`).
    pub fn diameter(&self) -> Option<u32> {
        self.stack.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sk_6_3_2_matches_fig7() {
        // Fig. 7 / §4.2: SK(6, 3, 2) has 72 processors (12 groups of 6),
        // degree 4, diameter 2, and 48 OPS couplers of degree 6.
        let sk = StackKautz::new(6, 3, 2);
        assert_eq!(sk.node_count(), 72);
        assert_eq!(sk.group_count(), 12);
        assert_eq!(sk.stacking_factor(), 6);
        assert_eq!(sk.node_degree(), 4);
        assert_eq!(sk.coupler_count(), 48);
        assert_eq!(sk.diameter(), Some(2));
        let h = sk.hypergraph();
        assert_eq!(h.hyperarc_count(), 48);
        for c in 0..h.hyperarc_count() {
            assert_eq!(h.hyperarc(c).unwrap().ops_degree(), Some(6));
        }
    }

    #[test]
    fn node_count_formula() {
        for (s, d, k) in [(2, 2, 2), (4, 2, 3), (6, 3, 2), (3, 4, 2), (2, 3, 3)] {
            let sk = StackKautz::new(s, d, k);
            assert_eq!(sk.node_count(), s * d.pow((k - 1) as u32) * (d + 1));
            assert_eq!(sk.coupler_count(), sk.group_count() * (d + 1));
        }
    }

    #[test]
    fn every_processor_can_transmit_on_d_plus_1_couplers() {
        let sk = StackKautz::new(3, 2, 2);
        let h = sk.hypergraph();
        for node in 0..sk.node_count() {
            assert_eq!(h.out_degree(node), sk.node_degree());
            assert_eq!(h.in_degree(node), sk.node_degree());
        }
    }

    #[test]
    fn diameter_inherited_from_kautz() {
        for (s, d, k) in [(2, 2, 2), (2, 2, 3), (4, 3, 2), (2, 2, 4)] {
            let sk = StackKautz::new(s, d, k);
            assert_eq!(sk.diameter(), Some(k as u32), "SK({s},{d},{k})");
        }
    }

    #[test]
    fn processor_labels_roundtrip() {
        let sk = StackKautz::new(4, 2, 2);
        for node in 0..sk.node_count() {
            let (g, y) = sk.processor_label(node);
            assert_eq!(sk.processor(g, y), node);
            assert!(y < 4);
            assert!(g < sk.group_count());
        }
    }

    #[test]
    fn group_word_is_a_valid_kautz_label() {
        let sk = StackKautz::new(2, 3, 2);
        for node in 0..sk.node_count() {
            let w = sk.group_word(node);
            assert_eq!(w.degree(), 3);
            assert_eq!(w.len(), 2);
            assert_eq!(w.index(), sk.processor_label(node).0);
        }
    }

    #[test]
    fn stacking_factor_one_is_kautz_plus_loops() {
        let sk = StackKautz::new(1, 2, 3);
        assert_eq!(sk.node_count(), 12);
        // Flattened stack with s = 1 equals the quotient KG⁺(2,3).
        assert!(sk
            .stack_graph()
            .flatten()
            .same_arcs(&crate::kautz::kautz_with_loops(2, 3)));
    }

    #[test]
    #[should_panic(expected = "s must be >= 1")]
    fn zero_stacking_factor_panics() {
        StackKautz::new(0, 2, 2);
    }
}
