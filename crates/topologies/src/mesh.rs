//! Multi-dimensional meshes and tori.
//!
//! The 4-D mesh is one of the electronic interconnection networks that
//! Zane et al. (ref [24]) realize with the OTIS architecture; the
//! reproduction provides general `k`-dimensional meshes and tori so that the
//! comparison tables can include them.
//!
//! Nodes are points of the box `dims[0] × dims[1] × … × dims[r-1]` in
//! row-major order; mesh arcs join points differing by ±1 in exactly one
//! coordinate (without wraparound), torus arcs add the wraparound.

use otis_graphs::{Digraph, DigraphBuilder};

/// Number of nodes of a mesh/torus with the given per-dimension extents.
pub fn mesh_node_count(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Converts mixed-radix coordinates to the row-major node identifier.
pub fn coords_to_index(dims: &[usize], coords: &[usize]) -> usize {
    assert_eq!(dims.len(), coords.len(), "dimension mismatch");
    let mut idx = 0usize;
    for (extent, &c) in dims.iter().zip(coords) {
        assert!(
            c < *extent,
            "coordinate {c} out of range for extent {extent}"
        );
        idx = idx * extent + c;
    }
    idx
}

/// Converts a row-major node identifier back to coordinates.
pub fn index_to_coords(dims: &[usize], index: usize) -> Vec<usize> {
    let mut rest = index;
    let mut coords = vec![0usize; dims.len()];
    for i in (0..dims.len()).rev() {
        coords[i] = rest % dims[i];
        rest /= dims[i];
    }
    assert_eq!(rest, 0, "index out of range");
    coords
}

fn grid(dims: &[usize], wraparound: bool) -> Digraph {
    assert!(!dims.is_empty(), "at least one dimension required");
    assert!(dims.iter().all(|&e| e >= 1), "every extent must be >= 1");
    let n = mesh_node_count(dims);
    let mut b = DigraphBuilder::new(n);
    for idx in 0..n {
        let coords = index_to_coords(dims, idx);
        for (dim, &extent) in dims.iter().enumerate() {
            if extent == 1 {
                continue;
            }
            let c = coords[dim];
            // +1 direction
            if c + 1 < extent {
                let mut t = coords.clone();
                t[dim] = c + 1;
                b.add_arc(idx, coords_to_index(dims, &t));
            } else if wraparound && extent > 2 {
                let mut t = coords.clone();
                t[dim] = 0;
                b.add_arc(idx, coords_to_index(dims, &t));
            }
            // -1 direction
            if c > 0 {
                let mut t = coords.clone();
                t[dim] = c - 1;
                b.add_arc(idx, coords_to_index(dims, &t));
            } else if wraparound && extent > 2 {
                let mut t = coords.clone();
                t[dim] = extent - 1;
                b.add_arc(idx, coords_to_index(dims, &t));
            }
        }
    }
    b.build()
}

/// Builds a `dims.len()`-dimensional mesh (no wraparound), as a symmetric
/// digraph.
pub fn mesh(dims: &[usize]) -> Digraph {
    grid(dims, false)
}

/// Builds a torus (mesh with wraparound); dimensions of extent ≤ 2 do not get
/// wraparound arcs to avoid parallel arcs.
pub fn torus(dims: &[usize]) -> Digraph {
    grid(dims, true)
}

/// The 4-D mesh with side `s` used by ref [24]: `s × s × s × s` nodes.
pub fn mesh_4d(side: usize) -> Digraph {
    mesh(&[side, side, side, side])
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_strongly_connected};

    #[test]
    fn coordinates_roundtrip() {
        let dims = [3, 4, 5];
        for idx in 0..mesh_node_count(&dims) {
            let c = index_to_coords(&dims, idx);
            assert_eq!(coords_to_index(&dims, &c), idx);
        }
    }

    #[test]
    fn line_mesh() {
        let g = mesh(&[5]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.arc_count(), 8);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn square_mesh_diameter() {
        let g = mesh(&[4, 4]);
        assert_eq!(g.node_count(), 16);
        assert!(is_strongly_connected(&g));
        assert_eq!(diameter(&g), Some(6));
    }

    #[test]
    fn torus_diameter_is_halved() {
        let g = torus(&[6]);
        assert_eq!(diameter(&g), Some(3));
        let g2 = torus(&[4, 4]);
        assert_eq!(diameter(&g2), Some(4));
    }

    #[test]
    fn mesh_4d_counts() {
        let g = mesh_4d(3);
        assert_eq!(g.node_count(), 81);
        assert!(is_strongly_connected(&g));
        assert_eq!(diameter(&g), Some(8));
    }

    #[test]
    fn symmetric_arcs() {
        let g = mesh(&[3, 3]);
        for a in g.arcs() {
            assert!(g.has_arc(a.target, a.source));
        }
    }

    #[test]
    fn extent_one_dimensions_are_ignored() {
        let g = mesh(&[1, 4, 1]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn extent_two_torus_has_no_parallel_arcs() {
        let g = torus(&[2, 3]);
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                assert!(g.arc_multiplicity(u, v) <= 1);
            }
        }
    }
}
