//! The directed Moore bound and Kautz optimality.
//!
//! A digraph with maximum out-degree `d` and diameter `k` has at most
//! `1 + d + d² + … + d^k` nodes (the directed Moore bound).  Kautz graphs
//! achieve `d^k + d^(k-1)` nodes, which is the largest known value for
//! `d > 2` and within a factor `(1 + 1/d)` of… the bound's leading term; the
//! paper's §2.5 appeals to this to justify the Kautz graph as the multi-hop
//! quotient of choice.  These helpers compute the bounds so the property
//! tables (experiment T1) can report "fraction of Moore bound achieved".

/// The directed Moore bound: maximum possible number of nodes of a digraph
/// with out-degree at most `d` and diameter at most `k`,
/// `1 + d + d² + … + d^k`.  Saturates at `usize::MAX` on overflow.
pub fn moore_bound(d: usize, k: usize) -> usize {
    let mut total: usize = 1;
    let mut power: usize = 1;
    for _ in 0..k {
        power = power.saturating_mul(d);
        total = total.saturating_add(power);
    }
    total
}

/// Number of nodes of the Kautz graph `KG(d, k)`: `d^k + d^(k-1)`.
/// Saturates on overflow.
pub fn kautz_bound(d: usize, k: usize) -> usize {
    assert!(d >= 1 && k >= 1);
    let low = d.checked_pow((k - 1) as u32).unwrap_or(usize::MAX);
    let high = low.saturating_mul(d);
    high.saturating_add(low)
}

/// Fraction of the Moore bound achieved by the Kautz graph of the same
/// degree and diameter, in `(0, 1]`.
pub fn kautz_moore_ratio(d: usize, k: usize) -> f64 {
    kautz_bound(d, k) as f64 / moore_bound(d, k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kautz::kautz_node_count;

    #[test]
    fn moore_bound_values() {
        assert_eq!(moore_bound(2, 1), 3);
        assert_eq!(moore_bound(2, 2), 7);
        assert_eq!(moore_bound(2, 3), 15);
        assert_eq!(moore_bound(3, 2), 13);
        assert_eq!(moore_bound(5, 4), 781);
        assert_eq!(moore_bound(1, 4), 5);
    }

    #[test]
    fn kautz_bound_matches_construction() {
        for (d, k) in [(2, 2), (2, 3), (3, 2), (3, 3), (5, 4)] {
            assert_eq!(kautz_bound(d, k), kautz_node_count(d, k));
        }
    }

    #[test]
    fn kautz_never_exceeds_moore() {
        for d in 1..6 {
            for k in 1..6 {
                assert!(kautz_bound(d, k) <= moore_bound(d, k), "d={d} k={k}");
            }
        }
    }

    #[test]
    fn kautz_diameter_one_achieves_moore_minus_nothing() {
        // KG(d, 1) = K_{d+1} has d+1 nodes; the Moore bound for k=1 is d+1.
        for d in 1..8 {
            assert_eq!(kautz_bound(d, 1), d + 1);
            assert_eq!(moore_bound(d, 1), d + 1);
            assert!((kautz_moore_ratio(d, 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ratio_tends_to_reasonable_fraction() {
        // For large d the ratio approaches (d^k + d^{k-1}) / (d^k(1+1/(d-1))) ~ 1 - O(1/d).
        let r = kautz_moore_ratio(10, 3);
        assert!(r > 0.85 && r <= 1.0);
        let r2 = kautz_moore_ratio(2, 5);
        assert!(r2 > 0.7 && r2 < 1.0);
    }

    #[test]
    fn saturation_does_not_panic() {
        let huge = moore_bound(usize::MAX / 2, 3);
        assert_eq!(huge, usize::MAX);
        let huge2 = kautz_bound(usize::MAX / 2, 2);
        assert_eq!(huge2, usize::MAX);
    }
}
