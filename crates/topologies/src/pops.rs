//! The Partitioned Optical Passive Star network `POPS(t, g)`.
//!
//! §2.4 of the paper: `POPS(t, g)` has `N = t·g` processors divided into `g`
//! groups of size `t`, and `g²` OPS couplers of degree `t`.  The coupler
//! labelled `(i, j)` has its inputs connected to group `i` and its outputs to
//! group `j`.  It is a **single-hop multi-OPS** network: any processor
//! reaches any other in one optical hop (possibly through the loop coupler
//! `(i, i)` of its own group).
//!
//! As proposed by Berthomé and Ferreira, `POPS(t, g)` is modelled as the
//! stack-graph `ς(t, K⁺_g)` (Fig. 5 of the paper): the quotient is the
//! complete digraph *with loops* on the `g` groups and the stacking factor is
//! the group size `t`.

use crate::complete::complete_digraph_with_loops;
use otis_graphs::{Hypergraph, StackGraph, StackNode};

/// The `POPS(t, g)` network, held as its stack-graph model `ς(t, K⁺_g)`.
#[derive(Debug, Clone)]
pub struct Pops {
    t: usize,
    g: usize,
    stack: StackGraph,
}

impl Pops {
    /// Builds `POPS(t, g)`.  Both the group size `t` and the number of groups
    /// `g` must be at least 1.
    pub fn new(t: usize, g: usize) -> Self {
        assert!(t >= 1, "group size t must be >= 1");
        assert!(g >= 1, "group count g must be >= 1");
        let quotient = complete_digraph_with_loops(g);
        let stack = StackGraph::new(t, quotient).expect("t >= 1 was checked");
        Pops { t, g, stack }
    }

    /// Group size `t` (also the degree of every OPS coupler).
    pub fn group_size(&self) -> usize {
        self.t
    }

    /// Number of groups `g`.
    pub fn group_count(&self) -> usize {
        self.g
    }

    /// Total number of processors `N = t·g`.
    pub fn node_count(&self) -> usize {
        self.t * self.g
    }

    /// Number of OPS couplers, `g²`.
    pub fn coupler_count(&self) -> usize {
        self.g * self.g
    }

    /// The stack-graph model `ς(t, K⁺_g)`.
    pub fn stack_graph(&self) -> &StackGraph {
        &self.stack
    }

    /// The hypergraph with one hyperarc per OPS coupler.  Hyperarc `i·g + j`
    /// is the coupler `(i, j)` (inputs from group `i`, outputs to group `j`),
    /// matching the paper's labelling.
    pub fn hypergraph(&self) -> Hypergraph {
        self.stack.to_hypergraph()
    }

    /// Identifier of the coupler `(i, j)` in [`Pops::hypergraph`].
    pub fn coupler_index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.g && j < self.g, "coupler label out of range");
        i * self.g + j
    }

    /// The `(source group, destination group)` label of a coupler identifier.
    pub fn coupler_label(&self, coupler: usize) -> (usize, usize) {
        assert!(coupler < self.coupler_count(), "coupler out of range");
        (coupler / self.g, coupler % self.g)
    }

    /// Flat identifier of processor `(group, index)`.
    pub fn processor(&self, group: usize, index: usize) -> usize {
        self.stack.to_flat(StackNode::new(index, group))
    }

    /// The `(group, index)` label of a flat processor identifier.
    pub fn processor_label(&self, node: usize) -> (usize, usize) {
        let sn = self.stack.to_stack_node(node);
        (sn.group, sn.index)
    }

    /// Single-hop property: every ordered pair of processors shares at least
    /// one coupler the source can write and the destination can read.
    /// Returns the diameter of the flattened network (1 whenever `N > 1`).
    pub fn diameter(&self) -> Option<u32> {
        self.stack.diameter()
    }

    /// Number of optical transmitters per processor (one per coupler whose
    /// input side touches its group): `g`.
    pub fn transmitters_per_processor(&self) -> usize {
        self.g
    }

    /// Number of optical receivers per processor: `g`.
    pub fn receivers_per_processor(&self) -> usize {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_4_2_matches_fig4() {
        // Fig. 4: POPS(4, 2) with 8 nodes, 4 couplers of degree 4.
        let p = Pops::new(4, 2);
        assert_eq!(p.node_count(), 8);
        assert_eq!(p.coupler_count(), 4);
        assert_eq!(p.group_size(), 4);
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.diameter(), Some(1));
        let h = p.hypergraph();
        assert_eq!(h.hyperarc_count(), 4);
        for c in 0..4 {
            assert_eq!(h.hyperarc(c).unwrap().ops_degree(), Some(4));
        }
    }

    #[test]
    fn coupler_labelling() {
        let p = Pops::new(3, 4);
        for i in 0..4 {
            for j in 0..4 {
                let c = p.coupler_index(i, j);
                assert_eq!(p.coupler_label(c), (i, j));
                // Coupler (i,j) must read from group i and write to group j.
                let h = p.hypergraph();
                let arc = h.hyperarc(c).unwrap();
                for &n in &arc.tail {
                    assert_eq!(p.processor_label(n).0, i);
                }
                for &n in &arc.head {
                    assert_eq!(p.processor_label(n).0, j);
                }
            }
        }
    }

    #[test]
    fn processor_labelling_roundtrip() {
        let p = Pops::new(5, 3);
        for g in 0..3 {
            for x in 0..5 {
                let id = p.processor(g, x);
                assert_eq!(p.processor_label(id), (g, x));
            }
        }
    }

    #[test]
    fn single_hop_for_various_sizes() {
        for (t, g) in [(1, 2), (2, 2), (4, 2), (3, 5), (8, 4)] {
            let p = Pops::new(t, g);
            assert_eq!(p.diameter(), Some(1), "POPS({t},{g}) must be single-hop");
        }
    }

    #[test]
    fn transceiver_counts() {
        let p = Pops::new(6, 7);
        assert_eq!(p.transmitters_per_processor(), 7);
        assert_eq!(p.receivers_per_processor(), 7);
    }

    #[test]
    fn degenerate_single_group() {
        let p = Pops::new(4, 1);
        assert_eq!(p.coupler_count(), 1);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.diameter(), Some(1));
    }

    #[test]
    #[should_panic(expected = "t must be >= 1")]
    fn zero_group_size_panics() {
        Pops::new(0, 2);
    }
}
