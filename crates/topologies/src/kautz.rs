//! Kautz graphs `KG(d, k)` and `KG⁺(d, k)`.
//!
//! Two equivalent constructions are provided (both appear in the paper,
//! Definition 2 and Fig. 6):
//!
//! * **word construction** ([`kautz`]): vertices are Kautz words of length
//!   `k` over `{0, …, d}` with distinct consecutive letters, and
//!   `(x₁,…,x_k) → (x₂,…,x_k,z)` for every `z ≠ x_k`;
//! * **line-digraph construction** ([`kautz_by_line_digraph`]):
//!   `KG(d, 1) = K_{d+1}` and `KG(d, k) = L^{k-1}(K_{d+1})`.
//!
//! The word construction yields the canonical node numbering of
//! [`crate::labels::KautzWord::index`]; the line-digraph construction yields a
//! graph isomorphic to it (tests check this).
//!
//! `KG(d, k)` has `N = d^(k-1)(d+1)` nodes, constant in/out degree `d`,
//! diameter `k ≈ log_d N`, and is Eulerian and Hamiltonian; for `d > 2` it is
//! optimal (largest known N) with respect to the directed (d, k) problem.

use crate::complete::complete_digraph;
use crate::labels::KautzWord;
use otis_graphs::line_digraph::line_digraph_iterated;
use otis_graphs::{Digraph, DigraphBuilder};

/// Number of nodes of `KG(d, k)`: `d^(k-1) · (d + 1)`.
///
/// # Panics
/// Panics if `d == 0` or `k == 0`.
pub fn kautz_node_count(d: usize, k: usize) -> usize {
    assert!(
        d >= 1 && k >= 1,
        "Kautz parameters must satisfy d >= 1, k >= 1"
    );
    d.pow((k - 1) as u32) * (d + 1)
}

/// Builds `KG(d, k)` with the word-label construction.
///
/// Node `i` corresponds to the Kautz word `KautzWord::from_index(d, k, i)`,
/// and the out-arcs of a node are inserted in increasing order of the shifted
/// in letter (so the α-th out-arc is well defined, which the routing and OTIS
/// design layers rely on).
pub fn kautz(d: usize, k: usize) -> Digraph {
    let n = kautz_node_count(d, k);
    let mut b = DigraphBuilder::with_capacity(n, n * d);
    for idx in 0..n {
        let w = KautzWord::from_index(d, k, idx).expect("index in range");
        for succ in w.successors() {
            b.add_arc(idx, succ.index());
        }
    }
    b.build()
}

/// Builds `KG⁺(d, k)`: the Kautz graph with one loop added at every node,
/// hence constant degree `d + 1`.  This is the quotient of the stack-Kautz
/// network (Definition 4 of the paper).
pub fn kautz_with_loops(d: usize, k: usize) -> Digraph {
    kautz(d, k).with_loops()
}

/// Builds `KG(d, k)` as the iterated line digraph `L^(k-1)(K_{d+1})`.
///
/// The node numbering differs from [`kautz`] (it follows arc-creation order
/// of the intermediate line digraphs) but the result is isomorphic.
pub fn kautz_by_line_digraph(d: usize, k: usize) -> Digraph {
    assert!(
        d >= 1 && k >= 1,
        "Kautz parameters must satisfy d >= 1, k >= 1"
    );
    line_digraph_iterated(&complete_digraph(d + 1), k - 1)
}

/// A convenience handle bundling the parameters and the constructed digraph,
/// with label lookups in both directions.
#[derive(Debug, Clone)]
pub struct Kautz {
    d: usize,
    k: usize,
    graph: Digraph,
}

impl Kautz {
    /// Constructs `KG(d, k)` (word construction).
    pub fn new(d: usize, k: usize) -> Self {
        Kautz {
            d,
            k,
            graph: kautz(d, k),
        }
    }

    /// Degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Diameter parameter `k`.
    pub fn diameter_parameter(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The word label of node `index`.
    pub fn label(&self, index: usize) -> KautzWord {
        KautzWord::from_index(self.d, self.k, index).expect("index in range")
    }

    /// The node identifier of a word label.
    pub fn index_of(&self, word: &KautzWord) -> usize {
        assert_eq!(word.degree(), self.d, "word degree mismatch");
        assert_eq!(word.len(), self.k, "word length mismatch");
        word.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_eulerian, is_hamiltonian, is_strongly_connected};
    use otis_graphs::are_isomorphic;

    #[test]
    fn node_counts() {
        assert_eq!(kautz_node_count(2, 1), 3);
        assert_eq!(kautz_node_count(2, 2), 6);
        assert_eq!(kautz_node_count(2, 3), 12);
        assert_eq!(kautz_node_count(3, 2), 12);
        // The paper's §2.5 example claims KG(5,4) has 3750 nodes, but the
        // formula N = d^(k-1)(d+1) it states two sentences earlier gives
        // 5³·6 = 750; 3750 = 5⁴·6 is KG(5,5). We follow the formula (the
        // standard Kautz count) and record the discrepancy in EXPERIMENTS.md.
        assert_eq!(kautz_node_count(5, 4), 750);
        assert_eq!(kautz_node_count(5, 5), 3750);
    }

    #[test]
    fn kautz_is_d_regular_with_right_size() {
        for (d, k) in [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)] {
            let g = kautz(d, k);
            assert_eq!(g.node_count(), kautz_node_count(d, k));
            assert_eq!(g.arc_count(), g.node_count() * d);
            assert!(g.is_d_regular(d), "KG({d},{k}) must be {d}-regular");
            assert_eq!(g.loop_count(), 0);
        }
    }

    #[test]
    fn kautz_diameter_is_k() {
        for (d, k) in [(2, 1), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)] {
            let g = kautz(d, k);
            assert_eq!(diameter(&g), Some(k as u32), "diameter of KG({d},{k})");
        }
    }

    #[test]
    fn kautz_1_is_complete() {
        let g = kautz(3, 1);
        assert!(g.same_arcs(&complete_digraph(4)));
    }

    #[test]
    fn word_and_line_digraph_constructions_are_isomorphic() {
        for (d, k) in [(2, 2), (2, 3), (3, 2)] {
            let a = kautz(d, k);
            let b = kautz_by_line_digraph(d, k);
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.arc_count(), b.arc_count());
            assert!(are_isomorphic(&a, &b), "KG({d},{k}) constructions disagree");
        }
    }

    #[test]
    fn kautz_is_eulerian_and_hamiltonian() {
        let g = kautz(2, 3);
        assert!(is_eulerian(&g));
        assert!(is_hamiltonian(&g));
        let g2 = kautz(3, 2);
        assert!(is_eulerian(&g2));
        assert!(is_hamiltonian(&g2));
    }

    #[test]
    fn kautz_with_loops_degree() {
        let g = kautz_with_loops(3, 2);
        assert!(g.is_d_regular(4));
        assert_eq!(g.loop_count(), 12);
    }

    #[test]
    fn kautz_strongly_connected() {
        assert!(is_strongly_connected(&kautz(2, 4)));
        assert!(is_strongly_connected(&kautz(4, 2)));
    }

    #[test]
    fn arcs_follow_word_shifts() {
        let kz = Kautz::new(2, 3);
        for idx in 0..kz.node_count() {
            let w = kz.label(idx);
            let succ_indices: Vec<usize> = w.successors().iter().map(|s| s.index()).collect();
            assert_eq!(kz.graph().out_neighbors(idx), succ_indices.as_slice());
        }
    }

    #[test]
    fn handle_roundtrip() {
        let kz = Kautz::new(3, 2);
        assert_eq!(kz.degree(), 3);
        assert_eq!(kz.diameter_parameter(), 2);
        for idx in 0..kz.node_count() {
            assert_eq!(kz.index_of(&kz.label(idx)), idx);
        }
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_degree_panics() {
        kautz_node_count(0, 2);
    }

    #[test]
    fn larger_instance_properties() {
        // KG(4,3): 80 nodes, degree 4, diameter 3.
        let g = kautz(4, 3);
        assert_eq!(g.node_count(), 80);
        assert!(g.is_d_regular(4));
        assert_eq!(diameter(&g), Some(3));
    }
}
