//! Butterfly networks.
//!
//! The last of the four families Zane et al. (ref [24]) realize with OTIS.
//! The `k`-dimensional (unwrapped) butterfly has `(k+1)·2^k` nodes arranged in
//! `k+1` levels of `2^k` rows; node `(level, row)` with `level < k` is joined
//! to `(level+1, row)` (straight edge) and `(level+1, row ⊕ 2^level)` (cross
//! edge).  The wrapped butterfly identifies level `k` with level `0`.
//!
//! Arcs are directed from level `ℓ` to level `ℓ+1` and back (symmetric
//! modelling) for the unwrapped variant, matching how the network is used as
//! a multistage interconnect.

use otis_graphs::{Digraph, DigraphBuilder};

/// Number of nodes of the unwrapped `k`-dimensional butterfly: `(k+1)·2^k`.
pub fn butterfly_node_count(k: usize) -> usize {
    (k + 1) * (1usize << k)
}

/// Node identifier of `(level, row)` in the unwrapped butterfly.
pub fn butterfly_index(k: usize, level: usize, row: usize) -> usize {
    assert!(level <= k, "level out of range");
    assert!(row < (1 << k), "row out of range");
    level * (1usize << k) + row
}

/// Builds the unwrapped `k`-dimensional butterfly as a symmetric digraph.
pub fn butterfly(k: usize) -> Digraph {
    assert!(
        (1..=24).contains(&k),
        "butterfly dimension must be in 1..=24"
    );
    let rows = 1usize << k;
    let mut b = DigraphBuilder::new(butterfly_node_count(k));
    for level in 0..k {
        for row in 0..rows {
            let here = butterfly_index(k, level, row);
            let straight = butterfly_index(k, level + 1, row);
            let cross = butterfly_index(k, level + 1, row ^ (1 << level));
            for &t in &[straight, cross] {
                b.add_arc(here, t);
                b.add_arc(t, here);
            }
        }
    }
    b.build()
}

/// Builds the wrapped `k`-dimensional butterfly (levels `0..k`, level `k`
/// identified with level `0`), a `2d`-regular digraph on `k·2^k` nodes.
pub fn wrapped_butterfly(k: usize) -> Digraph {
    assert!(
        (2..=24).contains(&k),
        "wrapped butterfly dimension must be in 2..=24"
    );
    let rows = 1usize << k;
    let n = k * rows;
    let idx = |level: usize, row: usize| (level % k) * rows + row;
    let mut b = DigraphBuilder::new(n);
    for level in 0..k {
        for row in 0..rows {
            let here = idx(level, row);
            let straight = idx(level + 1, row);
            let cross = idx(level + 1, row ^ (1 << level));
            for &t in &[straight, cross] {
                b.add_arc(here, t);
                b.add_arc(t, here);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_strongly_connected};

    #[test]
    fn node_counts() {
        assert_eq!(butterfly_node_count(1), 4);
        assert_eq!(butterfly_node_count(2), 12);
        assert_eq!(butterfly_node_count(3), 32);
        for k in 1..=4 {
            assert_eq!(butterfly(k).node_count(), butterfly_node_count(k));
        }
    }

    #[test]
    fn arc_counts() {
        // k levels of 2^k rows, each node has straight + cross forward edges,
        // each modelled as 2 arcs.
        for k in 1..=4 {
            let g = butterfly(k);
            assert_eq!(g.arc_count(), k * (1 << k) * 2 * 2);
        }
    }

    #[test]
    fn degrees() {
        let k = 3;
        let g = butterfly(k);
        // End levels have degree 2, middle levels degree 4.
        for row in 0..(1 << k) {
            assert_eq!(g.out_degree(butterfly_index(k, 0, row)), 2);
            assert_eq!(g.out_degree(butterfly_index(k, k, row)), 2);
            for level in 1..k {
                assert_eq!(g.out_degree(butterfly_index(k, level, row)), 4);
            }
        }
    }

    #[test]
    fn connected_with_expected_diameter() {
        // Unwrapped butterfly diameter is 2k.
        for k in 1..=4 {
            let g = butterfly(k);
            assert!(is_strongly_connected(&g));
            assert_eq!(diameter(&g), Some(2 * k as u32));
        }
    }

    #[test]
    fn wrapped_butterfly_is_regular() {
        let g = wrapped_butterfly(3);
        assert_eq!(g.node_count(), 3 * 8);
        assert!(g.is_d_regular(4));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn index_checks_level() {
        butterfly_index(2, 3, 0);
    }
}
