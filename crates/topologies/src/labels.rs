//! Kautz word labels.
//!
//! Definition 2 of the paper labels a vertex of `KG(d, k)` with a word
//! `(x₁, …, x_k)` over the alphabet `Σ = {0, …, d}` (so `|Σ| = d + 1`) in
//! which consecutive letters differ.  There is an arc from
//! `(x₁, …, x_k)` to every `(x₂, …, x_k, z)` with `z ≠ x_k`.
//!
//! This module provides the [`KautzWord`] type together with the bijection
//! between words and integer node identifiers used throughout the workspace.
//! The bijection is the mixed-radix encoding
//!
//! ```text
//! index(x) = x₁ · d^(k-1) + Σ_{i=2}^{k} rank(x_i | x_{i-1}) · d^(k-i)
//! ```
//!
//! where `rank(z | p)` is the position of `z` in the increasing enumeration of
//! `Σ \ {p}` (a value in `0..d`).  The first letter has `d + 1` choices and
//! every subsequent letter has `d`, so indices cover `0 .. (d+1)·d^(k-1)`
//! exactly once — the Kautz node count.

use std::fmt;

/// A validated Kautz word: letters over `{0, …, d}` with consecutive letters
/// distinct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KautzWord {
    d: usize,
    letters: Vec<usize>,
}

impl KautzWord {
    /// Creates a word for the Kautz graph of degree `d`, validating the
    /// alphabet and the "no two consecutive letters equal" constraint.
    pub fn new(d: usize, letters: Vec<usize>) -> Result<Self, String> {
        if d == 0 {
            return Err("Kautz degree d must be >= 1".to_string());
        }
        if letters.is_empty() {
            return Err("Kautz word must have length >= 1".to_string());
        }
        for &x in &letters {
            if x > d {
                return Err(format!("letter {x} outside alphabet 0..={d}"));
            }
        }
        for w in letters.windows(2) {
            if w[0] == w[1] {
                return Err(format!("consecutive letters equal ({})", w[0]));
            }
        }
        Ok(KautzWord { d, letters })
    }

    /// The Kautz degree `d` this word belongs to.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// The diameter parameter `k` (word length).
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the word is empty (never true for a validated word).
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letters of the word.
    pub fn letters(&self) -> &[usize] {
        &self.letters
    }

    /// The last letter.
    pub fn last(&self) -> usize {
        *self.letters.last().expect("validated word is non-empty")
    }

    /// The out-neighbour obtained by shifting in the letter `z` (must differ
    /// from the last letter): `(x₁,…,x_k) → (x₂,…,x_k,z)`.
    pub fn shift(&self, z: usize) -> Result<KautzWord, String> {
        if z > self.d {
            return Err(format!("letter {z} outside alphabet 0..={}", self.d));
        }
        if z == self.last() {
            return Err("shifted letter must differ from the last letter".to_string());
        }
        let mut letters = self.letters[1..].to_vec();
        letters.push(z);
        KautzWord::new(self.d, letters)
    }

    /// All `d` out-neighbours, in increasing order of the shifted-in letter.
    pub fn successors(&self) -> Vec<KautzWord> {
        (0..=self.d)
            .filter(|&z| z != self.last())
            .map(|z| self.shift(z).expect("valid by construction"))
            .collect()
    }

    /// Rank of letter `z` within `Σ \ {previous}`, i.e. a digit in `0..d`.
    fn rank(d: usize, previous: usize, z: usize) -> usize {
        debug_assert!(z != previous && z <= d && previous <= d);
        if z < previous {
            z
        } else {
            z - 1
        }
    }

    /// Inverse of [`KautzWord::rank`]: the letter with a given rank.
    fn unrank(d: usize, previous: usize, rank: usize) -> usize {
        debug_assert!(rank < d && previous <= d);
        if rank < previous {
            rank
        } else {
            rank + 1
        }
    }

    /// The integer node identifier of this word (see module docs).
    pub fn index(&self) -> usize {
        let d = self.d;
        let k = self.letters.len();
        let mut idx = self.letters[0];
        for i in 1..k {
            idx = idx * d + Self::rank(d, self.letters[i - 1], self.letters[i]);
        }
        idx
    }

    /// Reconstructs the word of length `k` for degree `d` from its integer
    /// identifier.  Inverse of [`KautzWord::index`].
    pub fn from_index(d: usize, k: usize, index: usize) -> Result<Self, String> {
        if d == 0 || k == 0 {
            return Err("d and k must be >= 1".to_string());
        }
        let count = (d + 1) * d.pow((k - 1) as u32);
        if index >= count {
            return Err(format!("index {index} out of range (node count {count})"));
        }
        // Peel digits from the least significant end.
        let mut digits = Vec::with_capacity(k);
        let mut rest = index;
        for _ in 1..k {
            digits.push(rest % d);
            rest /= d;
        }
        let first = rest; // in 0..=d
        let mut letters = Vec::with_capacity(k);
        letters.push(first);
        for &digit in digits.iter().rev() {
            let prev = *letters.last().unwrap();
            letters.push(Self::unrank(d, prev, digit));
        }
        KautzWord::new(d, letters)
    }
}

impl fmt::Display for KautzWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, x) in self.letters.iter().enumerate() {
            if i > 0 && self.d > 9 {
                write!(f, ".")?;
            }
            write!(f, "{x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(KautzWord::new(2, vec![0, 1, 0]).is_ok());
        assert!(KautzWord::new(2, vec![0, 0, 1]).is_err());
        assert!(KautzWord::new(2, vec![0, 3]).is_err());
        assert!(KautzWord::new(2, vec![]).is_err());
        assert!(KautzWord::new(0, vec![0]).is_err());
    }

    #[test]
    fn shift_and_successors() {
        let w = KautzWord::new(2, vec![1, 2]).unwrap();
        let succ = w.successors();
        assert_eq!(succ.len(), 2);
        assert_eq!(succ[0].letters(), &[2, 0]);
        assert_eq!(succ[1].letters(), &[2, 1]);
        assert!(w.shift(2).is_err());
        assert!(w.shift(5).is_err());
    }

    #[test]
    fn index_bijection_small() {
        // d = 2, k = 3: 12 nodes, every index roundtrips.
        for idx in 0..12 {
            let w = KautzWord::from_index(2, 3, idx).unwrap();
            assert_eq!(w.index(), idx);
            assert_eq!(w.len(), 3);
        }
        assert!(KautzWord::from_index(2, 3, 12).is_err());
    }

    #[test]
    fn index_bijection_larger() {
        // d = 3, k = 3: 3^2 * 4 = 36 nodes.
        let mut seen = std::collections::HashSet::new();
        for idx in 0..36 {
            let w = KautzWord::from_index(3, 3, idx).unwrap();
            assert_eq!(w.index(), idx);
            assert!(seen.insert(w.letters().to_vec()));
        }
        assert_eq!(seen.len(), 36);
    }

    #[test]
    fn k_equals_one_words() {
        // KG(d,1) = K_{d+1}: words are single letters 0..=d.
        for idx in 0..4 {
            let w = KautzWord::from_index(3, 1, idx).unwrap();
            assert_eq!(w.letters(), &[idx]);
        }
        assert!(KautzWord::from_index(3, 1, 4).is_err());
    }

    #[test]
    fn display_formats() {
        let w = KautzWord::new(2, vec![1, 2, 0]).unwrap();
        assert_eq!(w.to_string(), "120");
        let big = KautzWord::new(11, vec![10, 11]).unwrap();
        assert_eq!(big.to_string(), "10.11");
    }

    #[test]
    fn rank_unrank_roundtrip() {
        for d in 1..6 {
            for prev in 0..=d {
                for z in 0..=d {
                    if z == prev {
                        continue;
                    }
                    let r = KautzWord::rank(d, prev, z);
                    assert!(r < d);
                    assert_eq!(KautzWord::unrank(d, prev, r), z);
                }
            }
        }
    }
}
