//! Binary hypercubes `Q_n`.
//!
//! Zane, Marchand, Paturi and Esener (ref [24] of the paper) showed that the
//! OTIS architecture can realize the interconnections of hypercubes, 4-D
//! meshes, mesh-of-trees and butterflies by replacing bundles of electrical
//! wires with transmitter/receiver pairs.  The reproduction includes these
//! families both as comparison topologies and as additional OTIS-design
//! targets.
//!
//! `Q_n` has `2^n` nodes; node `u` is adjacent (symmetrically, modelled as two
//! opposite arcs) to `u ⊕ 2^i` for every bit position `i`.

use otis_graphs::{Digraph, DigraphBuilder};

/// Number of nodes of the `n`-dimensional hypercube: `2^n`.
pub fn hypercube_node_count(n: usize) -> usize {
    1usize << n
}

/// Builds the `n`-dimensional binary hypercube as a symmetric digraph
/// (each undirected edge becomes two opposite arcs).
pub fn hypercube(n: usize) -> Digraph {
    assert!(
        n <= 30,
        "hypercube dimension too large for an in-memory digraph"
    );
    let count = hypercube_node_count(n);
    let mut b = DigraphBuilder::with_capacity(count, count * n);
    for u in 0..count {
        for i in 0..n {
            b.add_arc(u, u ^ (1 << i));
        }
    }
    b.build()
}

/// Hamming distance between two node labels — the hypercube graph distance.
pub fn hamming_distance(u: usize, v: usize) -> u32 {
    ((u ^ v) as u64).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{bfs_distances, diameter, is_strongly_connected};

    #[test]
    fn counts_and_regularity() {
        for n in 1..=6 {
            let g = hypercube(n);
            assert_eq!(g.node_count(), 1 << n);
            assert_eq!(g.arc_count(), (1 << n) * n);
            assert!(g.is_d_regular(n));
            assert_eq!(g.loop_count(), 0);
        }
    }

    #[test]
    fn diameter_is_dimension() {
        for n in 1..=6 {
            assert_eq!(diameter(&hypercube(n)), Some(n as u32));
        }
    }

    #[test]
    fn distances_are_hamming() {
        let g = hypercube(5);
        let dist = bfs_distances(&g, 0);
        for (v, &bfs) in dist.iter().enumerate() {
            assert_eq!(bfs, hamming_distance(0, v));
        }
    }

    #[test]
    fn strongly_connected_and_symmetric() {
        let g = hypercube(4);
        assert!(is_strongly_connected(&g));
        for a in g.arcs() {
            assert!(g.has_arc(a.target, a.source));
        }
    }

    #[test]
    fn zero_dimensional_cube() {
        let g = hypercube(0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.arc_count(), 0);
    }
}
