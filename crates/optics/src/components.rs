//! Port-level optical component models.
//!
//! Every component has `input_count()` input ports and `output_count()`
//! output ports and a fixed internal propagation rule mapping each input
//! port to the set of output ports that light entering it reaches (with the
//! associated insertion loss).  The catalogue covers exactly the parts used
//! by the paper's designs:
//!
//! | kind | inputs | outputs | propagation |
//! |------|--------|---------|-------------|
//! | `Transmitter` | 0 | 1 | source of light |
//! | `Receiver` | 1 | 0 | sink |
//! | `Otis { groups, group_size }` | G·T | G·T | transpose permutation |
//! | `Multiplexer { inputs }` | s | 1 | every input to the single output |
//! | `BeamSplitter { outputs }` | 1 | z | the input to every output (1/z power each) |
//! | `OpsCoupler { degree }` | s | s | every input to every output (a multiplexer fused to a beam-splitter) |
//! | `Fiber` | 1 | 1 | pass-through (used for the stack-Kautz loop couplers) |

use crate::otis::Otis;
use crate::power;

/// Identifier of a component inside a [`crate::netlist::Netlist`].
pub type ComponentId = usize;

/// The catalogue of optical parts the designs are assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// An optical transmitter (laser / VCSEL); the start of a signal path.
    Transmitter,
    /// An optical receiver (photodetector); the end of a signal path.
    Receiver,
    /// A free-space `OTIS(G, T)` transpose interconnect.
    Otis {
        /// Number of transmitter-side groups `G`.
        groups: usize,
        /// Size of each transmitter-side group `T`.
        group_size: usize,
    },
    /// An optical multiplexer combining `inputs` fibres onto one output.
    Multiplexer {
        /// Number of input ports `s`.
        inputs: usize,
    },
    /// A beam-splitter dividing one input onto `outputs` outputs.
    BeamSplitter {
        /// Number of output ports `z`.
        outputs: usize,
    },
    /// A complete OPS coupler of the given degree (multiplexer + splitter).
    OpsCoupler {
        /// Degree `s`: number of inputs and of outputs.
        degree: usize,
    },
    /// A point-to-point fiber (or waveguide) link.
    Fiber,
}

impl ComponentKind {
    /// Number of input ports of this component.
    pub fn input_count(&self) -> usize {
        match *self {
            ComponentKind::Transmitter => 0,
            ComponentKind::Receiver => 1,
            ComponentKind::Otis { groups, group_size } => groups * group_size,
            ComponentKind::Multiplexer { inputs } => inputs,
            ComponentKind::BeamSplitter { .. } => 1,
            ComponentKind::OpsCoupler { degree } => degree,
            ComponentKind::Fiber => 1,
        }
    }

    /// Number of output ports of this component.
    pub fn output_count(&self) -> usize {
        match *self {
            ComponentKind::Transmitter => 1,
            ComponentKind::Receiver => 0,
            ComponentKind::Otis { groups, group_size } => groups * group_size,
            ComponentKind::Multiplexer { .. } => 1,
            ComponentKind::BeamSplitter { outputs } => outputs,
            ComponentKind::OpsCoupler { degree } => degree,
            ComponentKind::Fiber => 1,
        }
    }

    /// Internal propagation: output ports reached by light entering `input`,
    /// together with the insertion loss (dB) incurred inside the component.
    ///
    /// # Panics
    /// Panics when `input` is out of range (or when called on a
    /// `Transmitter`, which has no inputs).
    pub fn propagate(&self, input: usize) -> Vec<(usize, f64)> {
        assert!(
            input < self.input_count(),
            "input port {input} out of range for {self:?}"
        );
        match *self {
            ComponentKind::Transmitter => unreachable!("transmitters have no inputs"),
            ComponentKind::Receiver => Vec::new(),
            ComponentKind::Otis { groups, group_size } => {
                let otis = Otis::new(groups, group_size);
                vec![(otis.map_index(input), power::OTIS_LOSS_DB)]
            }
            ComponentKind::Multiplexer { .. } => {
                vec![(0, power::MULTIPLEXER_LOSS_DB)]
            }
            ComponentKind::BeamSplitter { outputs } => {
                let loss = power::splitting_loss_db(outputs) + power::SPLITTER_EXCESS_LOSS_DB;
                (0..outputs).map(|o| (o, loss)).collect()
            }
            ComponentKind::OpsCoupler { degree } => {
                let loss = power::splitting_loss_db(degree)
                    + power::MULTIPLEXER_LOSS_DB
                    + power::SPLITTER_EXCESS_LOSS_DB;
                (0..degree).map(|o| (o, loss)).collect()
            }
            ComponentKind::Fiber => vec![(0, power::FIBER_LOSS_DB)],
        }
    }

    /// A short name used in printed inventories and trace dumps.
    pub fn short_name(&self) -> String {
        match *self {
            ComponentKind::Transmitter => "tx".to_string(),
            ComponentKind::Receiver => "rx".to_string(),
            ComponentKind::Otis { groups, group_size } => format!("OTIS({groups},{group_size})"),
            ComponentKind::Multiplexer { inputs } => format!("mux({inputs})"),
            ComponentKind::BeamSplitter { outputs } => format!("split({outputs})"),
            ComponentKind::OpsCoupler { degree } => format!("OPS({degree})"),
            ComponentKind::Fiber => "fiber".to_string(),
        }
    }
}

/// A placed component: its kind plus a free-form label (used by the designs
/// to record which group / coupler / processor the part belongs to).
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// What the component is.
    pub kind: ComponentKind,
    /// Human-readable label, e.g. `"group 3 transmitter-side OTIS"`.
    pub label: String,
}

impl Component {
    /// Creates a labelled component.
    pub fn new(kind: ComponentKind, label: impl Into<String>) -> Self {
        Component {
            kind,
            label: label.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts() {
        assert_eq!(ComponentKind::Transmitter.input_count(), 0);
        assert_eq!(ComponentKind::Transmitter.output_count(), 1);
        assert_eq!(ComponentKind::Receiver.input_count(), 1);
        assert_eq!(ComponentKind::Receiver.output_count(), 0);
        let otis = ComponentKind::Otis {
            groups: 3,
            group_size: 6,
        };
        assert_eq!(otis.input_count(), 18);
        assert_eq!(otis.output_count(), 18);
        assert_eq!(ComponentKind::Multiplexer { inputs: 6 }.input_count(), 6);
        assert_eq!(ComponentKind::Multiplexer { inputs: 6 }.output_count(), 1);
        assert_eq!(ComponentKind::BeamSplitter { outputs: 4 }.output_count(), 4);
        assert_eq!(ComponentKind::OpsCoupler { degree: 4 }.input_count(), 4);
        assert_eq!(ComponentKind::Fiber.output_count(), 1);
    }

    #[test]
    fn otis_propagation_follows_transpose() {
        let kind = ComponentKind::Otis {
            groups: 3,
            group_size: 6,
        };
        let otis = Otis::new(3, 6);
        for input in 0..18 {
            let out = kind.propagate(input);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, otis.map_index(input));
            assert!(out[0].1 > 0.0);
        }
    }

    #[test]
    fn multiplexer_funnels_to_single_output() {
        let kind = ComponentKind::Multiplexer { inputs: 5 };
        for input in 0..5 {
            assert_eq!(kind.propagate(input).len(), 1);
            assert_eq!(kind.propagate(input)[0].0, 0);
        }
    }

    #[test]
    fn splitter_broadcasts_with_1_over_z_loss() {
        let kind = ComponentKind::BeamSplitter { outputs: 4 };
        let out = kind.propagate(0);
        assert_eq!(out.len(), 4);
        // 1/4 split is about 6 dB plus the excess loss.
        for &(port, loss) in &out {
            assert!(port < 4);
            assert!((loss - (6.0206 + power::SPLITTER_EXCESS_LOSS_DB)).abs() < 0.01);
        }
    }

    #[test]
    fn coupler_is_all_to_all() {
        let kind = ComponentKind::OpsCoupler { degree: 3 };
        for input in 0..3 {
            let outs: Vec<usize> = kind.propagate(input).iter().map(|&(p, _)| p).collect();
            assert_eq!(outs, vec![0, 1, 2]);
        }
    }

    #[test]
    fn receiver_absorbs() {
        assert!(ComponentKind::Receiver.propagate(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn propagate_checks_port_range() {
        ComponentKind::Fiber.propagate(1);
    }

    #[test]
    fn short_names() {
        assert_eq!(
            ComponentKind::Otis {
                groups: 6,
                group_size: 4
            }
            .short_name(),
            "OTIS(6,4)"
        );
        assert_eq!(
            ComponentKind::OpsCoupler { degree: 6 }.short_name(),
            "OPS(6)"
        );
        assert_eq!(ComponentKind::Fiber.short_name(), "fiber");
    }

    #[test]
    fn component_labels() {
        let c = Component::new(ComponentKind::Transmitter, "processor (0,3) transmitter 1");
        assert_eq!(c.kind, ComponentKind::Transmitter);
        assert!(c.label.contains("processor"));
    }
}
