//! Signal tracing through a netlist.
//!
//! Starting from a transmitter, light propagates through the design: each
//! wire carries it to the next component's input port, and the component's
//! internal rule ([`crate::components::ComponentKind::propagate`]) determines
//! which output ports it emerges from (fanning out inside beam-splitters and
//! OPS couplers) and how much optical power is lost.  Tracing terminates at
//! receivers.
//!
//! The `otis-core` crate uses tracing to *prove* that a design realizes its
//! target topology: for every transmitter, the set of reached receivers must
//! match the arcs / hyperarcs of the target graph exactly.

use crate::components::{ComponentId, ComponentKind};
use crate::netlist::{Netlist, PortRef};
use std::collections::VecDeque;

/// One receiver reached from a traced transmitter.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// The receiver component reached.
    pub receiver: ComponentId,
    /// Total optical loss accumulated on the path, in dB.
    pub loss_db: f64,
    /// Number of components traversed between the transmitter and the
    /// receiver (exclusive of both).
    pub components_traversed: usize,
}

/// Traces the light emitted by `transmitter` through the netlist and returns
/// every receiver it reaches, sorted by receiver identifier.
///
/// If several optical paths reach the same receiver (which does not happen in
/// any of the paper's designs but is physically possible), the one with the
/// smallest loss is reported.
///
/// # Panics
/// Panics if `transmitter` is not a transmitter component.
pub fn trace_from_transmitter(netlist: &Netlist, transmitter: ComponentId) -> Vec<TraceResult> {
    assert!(
        matches!(
            netlist.component(transmitter).kind,
            ComponentKind::Transmitter
        ),
        "component {transmitter} is not a transmitter"
    );
    let mut results: std::collections::BTreeMap<ComponentId, TraceResult> =
        std::collections::BTreeMap::new();
    // Queue of (output port, accumulated loss, components traversed).
    let mut queue: VecDeque<(PortRef, f64, usize)> = VecDeque::new();
    queue.push_back((PortRef::new(transmitter, 0), 0.0, 0));

    while let Some((out_port, loss, depth)) = queue.pop_front() {
        let Some(in_port) = netlist.destination(out_port) else {
            continue; // dangling output: light leaves the system
        };
        let kind = &netlist.component(in_port.component).kind;
        match kind {
            ComponentKind::Receiver => {
                let entry = TraceResult {
                    receiver: in_port.component,
                    loss_db: loss,
                    components_traversed: depth,
                };
                results
                    .entry(in_port.component)
                    .and_modify(|existing| {
                        if loss < existing.loss_db {
                            *existing = entry.clone();
                        }
                    })
                    .or_insert(entry);
            }
            ComponentKind::Transmitter => {
                unreachable!("transmitters have no input ports, the netlist cannot route into one")
            }
            _ => {
                for (next_out, extra_loss) in kind.propagate(in_port.port) {
                    queue.push_back((
                        PortRef::new(in_port.component, next_out),
                        loss + extra_loss,
                        depth + 1,
                    ));
                }
            }
        }
    }
    results.into_values().collect()
}

/// Convenience: the set of receivers reached (identifiers only).
pub fn reachable_receivers(netlist: &Netlist, transmitter: ComponentId) -> Vec<ComponentId> {
    trace_from_transmitter(netlist, transmitter)
        .into_iter()
        .map(|r| r.receiver)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power;

    /// tx -> mux(2) -> splitter(3) -> three receivers, plus a second tx into
    /// the same mux.
    fn chain() -> (Netlist, ComponentId, ComponentId, Vec<ComponentId>) {
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "tx0");
        let tx1 = n.add(ComponentKind::Transmitter, "tx1");
        let mux = n.add(ComponentKind::Multiplexer { inputs: 2 }, "mux");
        let split = n.add(ComponentKind::BeamSplitter { outputs: 3 }, "split");
        let rxs: Vec<ComponentId> = (0..3)
            .map(|i| n.add(ComponentKind::Receiver, format!("rx{i}")))
            .collect();
        n.connect(PortRef::new(tx0, 0), PortRef::new(mux, 0));
        n.connect(PortRef::new(tx1, 0), PortRef::new(mux, 1));
        n.connect(PortRef::new(mux, 0), PortRef::new(split, 0));
        for (i, &rx) in rxs.iter().enumerate() {
            n.connect(PortRef::new(split, i), PortRef::new(rx, 0));
        }
        (n, tx0, tx1, rxs)
    }

    #[test]
    fn trace_reaches_all_receivers() {
        let (n, tx0, tx1, rxs) = chain();
        let reached = reachable_receivers(&n, tx0);
        assert_eq!(reached, rxs);
        let reached1 = reachable_receivers(&n, tx1);
        assert_eq!(reached1, rxs);
    }

    #[test]
    fn loss_accumulates() {
        let (n, tx0, _, _) = chain();
        let results = trace_from_transmitter(&n, tx0);
        let expected = power::MULTIPLEXER_LOSS_DB
            + power::splitting_loss_db(3)
            + power::SPLITTER_EXCESS_LOSS_DB;
        for r in &results {
            assert!((r.loss_db - expected).abs() < 1e-9);
            assert_eq!(r.components_traversed, 2);
        }
    }

    #[test]
    fn otis_trace_is_point_to_point() {
        let mut n = Netlist::new();
        let otis = n.add(
            ComponentKind::Otis {
                groups: 2,
                group_size: 3,
            },
            "otis",
        );
        let txs: Vec<_> = (0..6)
            .map(|i| n.add(ComponentKind::Transmitter, format!("tx{i}")))
            .collect();
        let rxs: Vec<_> = (0..6)
            .map(|i| n.add(ComponentKind::Receiver, format!("rx{i}")))
            .collect();
        for (i, &tx) in txs.iter().enumerate() {
            n.connect(PortRef::new(tx, 0), PortRef::new(otis, i));
        }
        for (i, &rx) in rxs.iter().enumerate() {
            n.connect(PortRef::new(otis, i), PortRef::new(rx, 0));
        }
        let o = crate::otis::Otis::new(2, 3);
        for (i, &tx) in txs.iter().enumerate() {
            let reached = reachable_receivers(&n, tx);
            assert_eq!(reached.len(), 1);
            assert_eq!(reached[0], rxs[o.map_index(i)]);
        }
    }

    #[test]
    fn dangling_output_loses_light() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        let split = n.add(ComponentKind::BeamSplitter { outputs: 2 }, "split");
        let rx = n.add(ComponentKind::Receiver, "rx");
        n.connect(PortRef::new(tx, 0), PortRef::new(split, 0));
        n.connect(PortRef::new(split, 0), PortRef::new(rx, 0));
        // split output 1 left dangling.
        let reached = reachable_receivers(&n, tx);
        assert_eq!(reached, vec![rx]);
    }

    #[test]
    fn unconnected_transmitter_reaches_nothing() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        assert!(trace_from_transmitter(&n, tx).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a transmitter")]
    fn tracing_from_non_transmitter_panics() {
        let mut n = Netlist::new();
        let rx = n.add(ComponentKind::Receiver, "rx");
        trace_from_transmitter(&n, rx);
    }

    #[test]
    fn fiber_passthrough() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        let fiber = n.add(ComponentKind::Fiber, "loop");
        let rx = n.add(ComponentKind::Receiver, "rx");
        n.connect(PortRef::new(tx, 0), PortRef::new(fiber, 0));
        n.connect(PortRef::new(fiber, 0), PortRef::new(rx, 0));
        let results = trace_from_transmitter(&n, tx);
        assert_eq!(results.len(), 1);
        assert!((results[0].loss_db - power::FIBER_LOSS_DB).abs() < 1e-12);
    }
}
