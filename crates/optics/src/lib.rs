//! # otis-optics
//!
//! Optical-hardware substrate for the OTIS lightwave-network reproduction.
//!
//! The paper designs its networks out of a small catalogue of free-space and
//! guided optical components:
//!
//! * the **OTIS(G, T)** architecture (Marsden et al.): two planes of lenses
//!   that connect `G·T` transmitters to `G·T` receivers along the transpose
//!   permutation `(i, j) ↦ (T−1−j, G−1−i)`;
//! * **optical passive star (OPS) couplers** of degree `s`: an optical
//!   multiplexer followed by a beam-splitter, broadcasting any one of `s`
//!   inputs to all `s` outputs (with a `1/s` power split), single wavelength,
//!   one sender per time slot;
//! * **optical multiplexers** and **beam-splitters** as stand-alone parts
//!   (the group-of-processors building block of §3.1 splits the OPS coupler
//!   into its two halves and puts an OTIS between the processors and them);
//! * **fiber links** (used for the loop couplers of the stack-Kautz design).
//!
//! This crate models those parts at the port level ([`components`]), the
//! OTIS transpose itself ([`otis`]), complete optical designs as netlists
//! with signal tracing ([`netlist`], [`trace`]), a power/loss budget
//! ([`power`]), a hardware-cost inventory ([`cost`]) and the
//! electrical-vs-optical interconnect comparison of Feldman et al.
//! ([`electrical`]).
//!
//! The behavioural contract is deliberately simple — the paper's results only
//! depend on *which transmitter reaches which receiver* and on *how many
//! discrete parts* a design needs — but it is strict: signal tracing is exact
//! and the `otis-core` crate uses it to verify that every design realizes its
//! target topology arc for arc.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod components;
pub mod cost;
pub mod electrical;
pub mod netlist;
pub mod otis;
pub mod power;
pub mod trace;

pub use components::{Component, ComponentId, ComponentKind};
pub use cost::HardwareInventory;
pub use netlist::{Netlist, PortRef};
pub use otis::Otis;
pub use power::{db_to_linear, linear_to_db, PowerBudget};
pub use trace::{trace_from_transmitter, TraceResult};
