//! Optical netlists: placed components plus port-to-port connections.
//!
//! A netlist is how the `otis-core` crate expresses a complete optical design
//! (Fig. 11 and Fig. 12 of the paper are netlists drawn as figures).  It is a
//! list of [`Component`]s and a set of directed connections from output
//! ports to input ports.  Physically, one output port illuminates exactly one
//! input port (free-space imaging or a fiber); the netlist enforces that and
//! also enforces that an input port is driven by at most one output port, so
//! that tracing is deterministic.
//!
//! Fan-out and fan-in happen *inside* components (beam-splitters and
//! multiplexers), never in the wiring — exactly as in the physical systems
//! the paper assembles.

use crate::components::{Component, ComponentId, ComponentKind};
use crate::cost::HardwareInventory;
use std::collections::BTreeMap;

/// A reference to one port of one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// The component.
    pub component: ComponentId,
    /// The port index within that component (input or output depending on
    /// context).
    pub port: usize,
}

impl PortRef {
    /// Creates a port reference.
    pub fn new(component: ComponentId, port: usize) -> Self {
        PortRef { component, port }
    }
}

/// A complete optical design: components plus wiring.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    components: Vec<Component>,
    /// Connection from an output port to the input port it illuminates.
    connections: BTreeMap<PortRef, PortRef>,
    /// Reverse index: which output port drives a given input port.
    driven_by: BTreeMap<PortRef, PortRef>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Places a component and returns its identifier.
    pub fn add(&mut self, kind: ComponentKind, label: impl Into<String>) -> ComponentId {
        self.components.push(Component::new(kind, label));
        self.components.len() - 1
    }

    /// Number of placed components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The component with a given identifier.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id]
    }

    /// All components, in placement order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of port-to-port connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Connects output port `from` to input port `to`.
    ///
    /// # Panics
    /// Panics when either reference is invalid, when `from` is already
    /// connected, or when `to` is already driven — an optical output
    /// illuminates exactly one input and an input is driven by at most one
    /// output.
    pub fn connect(&mut self, from: PortRef, to: PortRef) {
        let from_kind = &self.components[from.component].kind;
        let to_kind = &self.components[to.component].kind;
        assert!(
            from.port < from_kind.output_count(),
            "output port {} out of range for {}",
            from.port,
            from_kind.short_name()
        );
        assert!(
            to.port < to_kind.input_count(),
            "input port {} out of range for {}",
            to.port,
            to_kind.short_name()
        );
        assert!(
            !self.connections.contains_key(&from),
            "output port {from:?} is already connected"
        );
        assert!(
            !self.driven_by.contains_key(&to),
            "input port {to:?} is already driven"
        );
        self.connections.insert(from, to);
        self.driven_by.insert(to, from);
    }

    /// The input port illuminated by output port `from`, if connected.
    pub fn destination(&self, from: PortRef) -> Option<PortRef> {
        self.connections.get(&from).copied()
    }

    /// The output port driving input port `to`, if any.
    pub fn driver(&self, to: PortRef) -> Option<PortRef> {
        self.driven_by.get(&to).copied()
    }

    /// All component identifiers of a given kind predicate.
    pub fn components_where(&self, pred: impl Fn(&ComponentKind) -> bool) -> Vec<ComponentId> {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(&c.kind))
            .map(|(i, _)| i)
            .collect()
    }

    /// All transmitter component identifiers.
    pub fn transmitters(&self) -> Vec<ComponentId> {
        self.components_where(|k| matches!(k, ComponentKind::Transmitter))
    }

    /// All receiver component identifiers.
    pub fn receivers(&self) -> Vec<ComponentId> {
        self.components_where(|k| matches!(k, ComponentKind::Receiver))
    }

    /// Counts every placed part into a [`HardwareInventory`].
    pub fn inventory(&self) -> HardwareInventory {
        let mut inv = HardwareInventory::new();
        for c in &self.components {
            match c.kind {
                ComponentKind::Transmitter => inv.add_transmitters(1),
                ComponentKind::Receiver => inv.add_receivers(1),
                ComponentKind::Otis { groups, group_size } => inv.add_otis(groups, group_size),
                ComponentKind::Multiplexer { inputs } => inv.add_multiplexer(inputs),
                ComponentKind::BeamSplitter { outputs } => inv.add_splitter(outputs),
                ComponentKind::OpsCoupler { degree } => inv.add_coupler(degree),
                ComponentKind::Fiber => inv.add_fibers(1),
            }
        }
        inv
    }

    /// Checks structural completeness: every output port of every non-sink
    /// component is connected, and every input port of every non-source
    /// component is driven.  Returns the list of human-readable problems
    /// (empty when the netlist is fully wired).
    pub fn dangling_ports(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (id, c) in self.components.iter().enumerate() {
            for p in 0..c.kind.output_count() {
                let port = PortRef::new(id, p);
                if !self.connections.contains_key(&port) {
                    problems.push(format!(
                        "output {p} of component {id} ({}) is not connected",
                        c.kind.short_name()
                    ));
                }
            }
            for p in 0..c.kind.input_count() {
                let port = PortRef::new(id, p);
                if !self.driven_by.contains_key(&port) {
                    problems.push(format!(
                        "input {p} of component {id} ({}) is not driven",
                        c.kind.short_name()
                    ));
                }
            }
        }
        problems
    }

    /// `true` when [`Netlist::dangling_ports`] reports nothing.
    pub fn is_fully_wired(&self) -> bool {
        self.dangling_ports().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One transmitter feeding a degree-2 coupler feeding two receivers.
    fn tiny() -> (Netlist, ComponentId, ComponentId, ComponentId, ComponentId) {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx0");
        let tx1 = n.add(ComponentKind::Transmitter, "tx1");
        let coupler = n.add(ComponentKind::OpsCoupler { degree: 2 }, "ops");
        let rx0 = n.add(ComponentKind::Receiver, "rx0");
        let rx1 = n.add(ComponentKind::Receiver, "rx1");
        n.connect(PortRef::new(tx, 0), PortRef::new(coupler, 0));
        n.connect(PortRef::new(tx1, 0), PortRef::new(coupler, 1));
        n.connect(PortRef::new(coupler, 0), PortRef::new(rx0, 0));
        n.connect(PortRef::new(coupler, 1), PortRef::new(rx1, 0));
        (n, tx, coupler, rx0, rx1)
    }

    #[test]
    fn build_and_query() {
        let (n, tx, coupler, rx0, _) = tiny();
        assert_eq!(n.component_count(), 5);
        assert_eq!(n.connection_count(), 4);
        assert_eq!(
            n.destination(PortRef::new(tx, 0)),
            Some(PortRef::new(coupler, 0))
        );
        assert_eq!(
            n.driver(PortRef::new(rx0, 0)),
            Some(PortRef::new(coupler, 0))
        );
        assert_eq!(n.transmitters().len(), 2);
        assert_eq!(n.receivers().len(), 2);
        assert!(n.is_fully_wired());
    }

    #[test]
    fn inventory_from_netlist() {
        let (n, ..) = tiny();
        let inv = n.inventory();
        assert_eq!(inv.transmitter_count(), 2);
        assert_eq!(inv.receiver_count(), 2);
        assert_eq!(inv.coupler_count(), 1);
        assert_eq!(inv.couplers_of(2), 1);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_output_rejected() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        let rx0 = n.add(ComponentKind::Receiver, "rx0");
        let rx1 = n.add(ComponentKind::Receiver, "rx1");
        n.connect(PortRef::new(tx, 0), PortRef::new(rx0, 0));
        n.connect(PortRef::new(tx, 0), PortRef::new(rx1, 0));
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_drive_input_rejected() {
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "tx0");
        let tx1 = n.add(ComponentKind::Transmitter, "tx1");
        let rx = n.add(ComponentKind::Receiver, "rx");
        n.connect(PortRef::new(tx0, 0), PortRef::new(rx, 0));
        n.connect(PortRef::new(tx1, 0), PortRef::new(rx, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_range_checked() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        let rx = n.add(ComponentKind::Receiver, "rx");
        n.connect(PortRef::new(tx, 1), PortRef::new(rx, 0));
    }

    #[test]
    fn dangling_ports_reported() {
        let mut n = Netlist::new();
        let tx = n.add(ComponentKind::Transmitter, "tx");
        let mux = n.add(ComponentKind::Multiplexer { inputs: 2 }, "mux");
        n.connect(PortRef::new(tx, 0), PortRef::new(mux, 0));
        let problems = n.dangling_ports();
        // mux input 1 undriven and mux output 0 unconnected.
        assert_eq!(problems.len(), 2);
        assert!(!n.is_fully_wired());
    }

    #[test]
    fn components_where_filters() {
        let (n, ..) = tiny();
        let couplers = n.components_where(|k| matches!(k, ComponentKind::OpsCoupler { .. }));
        assert_eq!(couplers.len(), 1);
        assert_eq!(n.component(couplers[0]).label, "ops");
    }
}
