//! Optical power budget model.
//!
//! The only power-related fact the paper relies on is that an OPS coupler of
//! degree `s` divides the incoming signal into `s` equal parts — a
//! `10·log₁₀(s)` dB splitting loss — and that passive couplers need no power
//! source.  The constants below add typical insertion/excess losses for the
//! other parts so that complete designs can be given an end-to-end loss
//! figure and a feasibility check against a detector sensitivity; they are
//! representative free-space-optics numbers, not measurements from the
//! paper (which reports none).

/// Insertion loss of one OTIS lens pair traversal, in dB.
pub const OTIS_LOSS_DB: f64 = 1.0;

/// Insertion loss of an optical multiplexer, in dB.
pub const MULTIPLEXER_LOSS_DB: f64 = 1.0;

/// Excess loss of a beam-splitter beyond the ideal `1/z` split, in dB.
pub const SPLITTER_EXCESS_LOSS_DB: f64 = 0.5;

/// Loss of a short fiber link (connector dominated), in dB.
pub const FIBER_LOSS_DB: f64 = 0.5;

/// Default transmitter launch power, in dBm (typical VCSEL).
pub const DEFAULT_LAUNCH_POWER_DBM: f64 = 0.0;

/// Default receiver sensitivity, in dBm.
pub const DEFAULT_RECEIVER_SENSITIVITY_DBM: f64 = -30.0;

/// The ideal splitting loss of dividing one signal into `ways` equal parts:
/// `10·log₁₀(ways)` dB.  Zero for `ways ≤ 1`.
pub fn splitting_loss_db(ways: usize) -> f64 {
    if ways <= 1 {
        0.0
    } else {
        10.0 * (ways as f64).log10()
    }
}

/// Converts a dB value to a linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB.
pub fn linear_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// An end-to-end optical power budget for one transmitter→receiver path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// Launch power at the transmitter, dBm.
    pub launch_power_dbm: f64,
    /// Total path loss, dB (sum of every component's insertion/splitting loss).
    pub path_loss_db: f64,
    /// Receiver sensitivity, dBm.
    pub receiver_sensitivity_dbm: f64,
}

impl PowerBudget {
    /// A budget with the default launch power and sensitivity and the given
    /// path loss.
    pub fn with_path_loss(path_loss_db: f64) -> Self {
        PowerBudget {
            launch_power_dbm: DEFAULT_LAUNCH_POWER_DBM,
            path_loss_db,
            receiver_sensitivity_dbm: DEFAULT_RECEIVER_SENSITIVITY_DBM,
        }
    }

    /// Power arriving at the receiver, dBm.
    pub fn received_power_dbm(&self) -> f64 {
        self.launch_power_dbm - self.path_loss_db
    }

    /// Margin above the receiver sensitivity, dB; negative means the link
    /// does not close.
    pub fn margin_db(&self) -> f64 {
        self.received_power_dbm() - self.receiver_sensitivity_dbm
    }

    /// Whether the link closes (non-negative margin).
    pub fn is_feasible(&self) -> bool {
        self.margin_db() >= 0.0
    }

    /// Largest OPS coupler degree this budget could tolerate if the remaining
    /// margin were spent entirely on an additional `10·log₁₀(s)` splitting
    /// loss. Useful for "how far does this scale" questions in the cost
    /// tables.
    pub fn max_additional_split(&self) -> usize {
        if self.margin_db() <= 0.0 {
            return 1;
        }
        db_to_linear(self.margin_db()).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_loss_values() {
        assert_eq!(splitting_loss_db(1), 0.0);
        assert_eq!(splitting_loss_db(0), 0.0);
        assert!((splitting_loss_db(2) - 3.0103).abs() < 1e-3);
        assert!((splitting_loss_db(10) - 10.0).abs() < 1e-9);
        assert!((splitting_loss_db(100) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn db_linear_roundtrip() {
        for &x in &[0.1, 1.0, 2.0, 10.0, 123.4] {
            assert!((db_to_linear(linear_to_db(x)) - x).abs() < 1e-9);
        }
        assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn budget_margin() {
        let b = PowerBudget::with_path_loss(10.0);
        assert_eq!(b.received_power_dbm(), -10.0);
        assert_eq!(b.margin_db(), 20.0);
        assert!(b.is_feasible());
        let bad = PowerBudget::with_path_loss(35.0);
        assert!(!bad.is_feasible());
        assert!(bad.margin_db() < 0.0);
    }

    #[test]
    fn max_additional_split() {
        let b = PowerBudget::with_path_loss(10.0); // 20 dB margin -> 100x split
        assert_eq!(b.max_additional_split(), 100);
        let tight = PowerBudget::with_path_loss(27.0); // 3 dB -> ~2x
        assert_eq!(tight.max_additional_split(), 1); // floor(10^0.3) = 1 ... 1.995 -> 1
        let none = PowerBudget::with_path_loss(40.0);
        assert_eq!(none.max_additional_split(), 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn loss_constants_are_positive() {
        for &c in &[
            OTIS_LOSS_DB,
            MULTIPLEXER_LOSS_DB,
            SPLITTER_EXCESS_LOSS_DB,
            FIBER_LOSS_DB,
        ] {
            assert!(c > 0.0);
        }
        assert!(DEFAULT_RECEIVER_SENSITIVITY_DBM < DEFAULT_LAUNCH_POWER_DBM);
    }
}
