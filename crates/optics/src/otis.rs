//! The Optical Transpose Interconnection System `OTIS(G, T)`.
//!
//! §2.1 of the paper: `OTIS(G, T)` is a free-space optical system, built from
//! two planes of lenses, that provides point-to-point (1-to-1) connections
//! from `G` groups of `T` transmitters onto `T` groups of `G` receivers.
//! The transmitter of position `(i, j)` — group `i`, `0 ≤ i < G`, offset `j`,
//! `0 ≤ j < T` — is imaged onto the receiver of position
//! `(T − 1 − j, G − 1 − i)`.
//!
//! The type exposes the permutation in three equivalent forms (pair → pair,
//! flat index → flat index, and as a full table), its inverse, and the
//! lens-count accounting used by the hardware-cost experiments.

use crate::cost::HardwareInventory;

/// The `OTIS(G, T)` free-space transpose interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Otis {
    groups: usize,
    group_size: usize,
}

impl Otis {
    /// Creates `OTIS(G, T)` with `G = groups` transmitter groups of size
    /// `T = group_size`.  Both must be at least 1.
    pub fn new(groups: usize, group_size: usize) -> Self {
        assert!(groups >= 1, "OTIS needs G >= 1");
        assert!(group_size >= 1, "OTIS needs T >= 1");
        Otis { groups, group_size }
    }

    /// Number of transmitter groups `G`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Size of each transmitter group `T`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total number of transmitter (= receiver) positions, `G·T`.
    pub fn port_count(&self) -> usize {
        self.groups * self.group_size
    }

    /// The transpose map on `(group, offset)` pairs:
    /// `(i, j) ↦ (T − 1 − j, G − 1 − i)`.
    ///
    /// The output pair is a *receiver* position: receiver group in `0..T`,
    /// offset within the group in `0..G`.
    pub fn map_pair(&self, i: usize, j: usize) -> (usize, usize) {
        assert!(
            i < self.groups,
            "transmitter group {i} out of range (G = {})",
            self.groups
        );
        assert!(
            j < self.group_size,
            "transmitter offset {j} out of range (T = {})",
            self.group_size
        );
        (self.group_size - 1 - j, self.groups - 1 - i)
    }

    /// The inverse map: given a receiver position `(p, q)` (group `p` in
    /// `0..T`, offset `q` in `0..G`), returns the transmitter `(i, j)` imaged
    /// onto it.
    pub fn inverse_pair(&self, p: usize, q: usize) -> (usize, usize) {
        assert!(
            p < self.group_size,
            "receiver group {p} out of range (T = {})",
            self.group_size
        );
        assert!(
            q < self.groups,
            "receiver offset {q} out of range (G = {})",
            self.groups
        );
        (self.groups - 1 - q, self.group_size - 1 - p)
    }

    /// Flat transmitter index of `(i, j)`: `i·T + j`.
    pub fn tx_index(&self, i: usize, j: usize) -> usize {
        assert!(
            i < self.groups && j < self.group_size,
            "transmitter position out of range"
        );
        i * self.group_size + j
    }

    /// Flat receiver index of `(p, q)`: `p·G + q`.
    pub fn rx_index(&self, p: usize, q: usize) -> usize {
        assert!(
            p < self.group_size && q < self.groups,
            "receiver position out of range"
        );
        p * self.groups + q
    }

    /// The transpose map on flat indices: transmitter `e` (in `0..G·T`,
    /// numbered group-major) to receiver index (in `0..G·T`, numbered
    /// group-major on the receiver side).
    pub fn map_index(&self, tx: usize) -> usize {
        assert!(tx < self.port_count(), "transmitter index out of range");
        let i = tx / self.group_size;
        let j = tx % self.group_size;
        let (p, q) = self.map_pair(i, j);
        self.rx_index(p, q)
    }

    /// The inverse of [`Otis::map_index`].
    pub fn inverse_index(&self, rx: usize) -> usize {
        assert!(rx < self.port_count(), "receiver index out of range");
        let p = rx / self.groups;
        let q = rx % self.groups;
        let (i, j) = self.inverse_pair(p, q);
        self.tx_index(i, j)
    }

    /// The full permutation table: entry `tx` holds the receiver index that
    /// transmitter `tx` is imaged onto.
    pub fn permutation(&self) -> Vec<usize> {
        (0..self.port_count())
            .map(|tx| self.map_index(tx))
            .collect()
    }

    /// The `OTIS(T, G)` system obtained by swapping the roles of the two
    /// sides.  Composing `self` with `self.transposed()` (receiver positions
    /// fed back as transmitter positions) yields the identity on positions —
    /// the "back-to-back OTIS is transparent" property used by the POPS
    /// design, which tests verify.
    pub fn transposed(&self) -> Otis {
        Otis::new(self.group_size, self.groups)
    }

    /// Hardware inventory of one OTIS unit: the paper's construction uses two
    /// planes of lenses, with `G·T` lenslets on the transmitter plane and
    /// (in the Marsden et al. realization) `G·T` on the receiver plane.
    pub fn inventory(&self) -> HardwareInventory {
        let mut inv = HardwareInventory::default();
        inv.add_otis(self.groups, self.group_size);
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_otis_3_6_mapping() {
        // Fig. 1 of the paper: OTIS(3, 6). Spot-check the defining formula
        // (i, j) -> (T-1-j, G-1-i) on the corners and a middle point.
        let o = Otis::new(3, 6);
        assert_eq!(o.map_pair(0, 0), (5, 2));
        assert_eq!(o.map_pair(0, 5), (0, 2));
        assert_eq!(o.map_pair(2, 0), (5, 0));
        assert_eq!(o.map_pair(2, 5), (0, 0));
        assert_eq!(o.map_pair(1, 3), (2, 1));
        assert_eq!(o.port_count(), 18);
    }

    #[test]
    fn map_is_a_bijection() {
        for (g, t) in [(3, 6), (6, 4), (4, 6), (2, 2), (1, 5), (5, 1), (3, 12)] {
            let o = Otis::new(g, t);
            let perm = o.permutation();
            let mut seen = vec![false; o.port_count()];
            for &rx in &perm {
                assert!(!seen[rx], "OTIS({g},{t}) image {rx} repeated");
                seen[rx] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let o = Otis::new(4, 7);
        for tx in 0..o.port_count() {
            assert_eq!(o.inverse_index(o.map_index(tx)), tx);
        }
        for rx in 0..o.port_count() {
            assert_eq!(o.map_index(o.inverse_index(rx)), rx);
        }
    }

    #[test]
    fn inverse_pair_roundtrip() {
        let o = Otis::new(5, 3);
        for i in 0..5 {
            for j in 0..3 {
                let (p, q) = o.map_pair(i, j);
                assert_eq!(o.inverse_pair(p, q), (i, j));
            }
        }
    }

    #[test]
    fn back_to_back_otis_is_identity_on_positions() {
        // Send (i, j) through OTIS(G, T), treat the receiver position as a
        // transmitter position of OTIS(T, G): we must land back on (i, j).
        for (g, t) in [(4, 2), (2, 4), (3, 6), (6, 3)] {
            let a = Otis::new(g, t);
            let b = a.transposed();
            for i in 0..g {
                for j in 0..t {
                    let (p, q) = a.map_pair(i, j);
                    assert_eq!(b.map_pair(p, q), (i, j));
                }
            }
        }
    }

    #[test]
    fn square_otis_is_an_involution() {
        // When G == T the flat-index permutation is an involution.
        let o = Otis::new(4, 4);
        for tx in 0..o.port_count() {
            assert_eq!(o.map_index(o.map_index(tx)), tx);
        }
    }

    #[test]
    fn flat_index_layout() {
        let o = Otis::new(3, 6);
        assert_eq!(o.tx_index(0, 0), 0);
        assert_eq!(o.tx_index(1, 0), 6);
        assert_eq!(o.tx_index(2, 5), 17);
        assert_eq!(o.rx_index(0, 0), 0);
        assert_eq!(o.rx_index(5, 2), 17);
    }

    #[test]
    fn inventory_counts_one_unit() {
        let inv = Otis::new(3, 12).inventory();
        assert_eq!(inv.otis_units(), 1);
        assert_eq!(inv.lens_count(), 2 * 36);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_pair_checks_range() {
        Otis::new(3, 6).map_pair(3, 0);
    }
}
