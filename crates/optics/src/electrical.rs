//! Electrical vs. free-space-optical interconnect comparison.
//!
//! Reference [12] of the paper (Feldman, Esener, Guest, Lee, *Applied Optics*
//! 1988) compares electrical wires with free-space optical interconnects on
//! power and speed grounds and concludes that optics wins once the product of
//! line length and bit rate exceeds a technology-dependent threshold.  The
//! paper leans on that result to motivate replacing wire bundles with
//! transmitter/receiver pairs connected through OTIS.
//!
//! This module implements a parametric first-order version of that model so
//! the motivation table (experiment T3) can report the energy-per-bit and
//! delay of both technologies and the crossover length.  The default
//! parameters are representative of the era's CMOS + GaAs VCSEL technology
//! and can be overridden; the *shape* (linear-in-length electrical energy vs.
//! essentially length-independent optical energy) is what matters.

/// Technology parameters of the comparison model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Electrical wire capacitance per millimetre, in picofarads.
    pub wire_capacitance_pf_per_mm: f64,
    /// Supply voltage swing for the electrical line, in volts.
    pub voltage_swing_v: f64,
    /// Propagation speed on the electrical line, mm per nanosecond.
    pub electrical_speed_mm_per_ns: f64,
    /// Fixed energy of the optical transmitter + receiver per bit, in picojoules.
    pub optical_fixed_energy_pj: f64,
    /// Optical path propagation speed, mm per nanosecond (free space ≈ c).
    pub optical_speed_mm_per_ns: f64,
    /// Fixed conversion latency of the optical link (laser + detector), ns.
    pub optical_conversion_delay_ns: f64,
}

impl Default for InterconnectModel {
    fn default() -> Self {
        InterconnectModel {
            wire_capacitance_pf_per_mm: 0.2,
            voltage_swing_v: 3.3,
            electrical_speed_mm_per_ns: 150.0,
            optical_fixed_energy_pj: 5.0,
            optical_speed_mm_per_ns: 300.0,
            optical_conversion_delay_ns: 0.5,
        }
    }
}

impl InterconnectModel {
    /// Energy per bit of an electrical line of the given length, in
    /// picojoules: `C·L·V²` (dynamic switching energy).
    pub fn electrical_energy_pj(&self, length_mm: f64) -> f64 {
        self.wire_capacitance_pf_per_mm * length_mm * self.voltage_swing_v * self.voltage_swing_v
    }

    /// Energy per bit of an optical link, in picojoules (length independent
    /// to first order: the splitting/propagation losses are absorbed by the
    /// fixed laser drive energy as long as the link closes).
    pub fn optical_energy_pj(&self, _length_mm: f64) -> f64 {
        self.optical_fixed_energy_pj
    }

    /// Propagation delay of an electrical line, in nanoseconds.
    pub fn electrical_delay_ns(&self, length_mm: f64) -> f64 {
        length_mm / self.electrical_speed_mm_per_ns
    }

    /// End-to-end delay of an optical link, in nanoseconds.
    pub fn optical_delay_ns(&self, length_mm: f64) -> f64 {
        self.optical_conversion_delay_ns + length_mm / self.optical_speed_mm_per_ns
    }

    /// The length (mm) beyond which the optical link consumes less energy per
    /// bit than the electrical wire.
    pub fn energy_crossover_mm(&self) -> f64 {
        self.optical_fixed_energy_pj
            / (self.wire_capacitance_pf_per_mm * self.voltage_swing_v * self.voltage_swing_v)
    }

    /// `true` when optics is the lower-energy choice at this length.
    pub fn optics_wins_energy(&self, length_mm: f64) -> bool {
        self.optical_energy_pj(length_mm) < self.electrical_energy_pj(length_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_energy_grows_linearly() {
        let m = InterconnectModel::default();
        let e1 = m.electrical_energy_pj(10.0);
        let e2 = m.electrical_energy_pj(20.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn optical_energy_is_flat() {
        let m = InterconnectModel::default();
        assert_eq!(m.optical_energy_pj(1.0), m.optical_energy_pj(1000.0));
    }

    #[test]
    fn crossover_exists_and_is_consistent() {
        let m = InterconnectModel::default();
        let x = m.energy_crossover_mm();
        assert!(x > 0.0);
        assert!(!m.optics_wins_energy(x * 0.5));
        assert!(m.optics_wins_energy(x * 2.0));
        // At the crossover the two energies match.
        assert!((m.electrical_energy_pj(x) - m.optical_energy_pj(x)).abs() < 1e-9);
    }

    #[test]
    fn delay_comparison() {
        let m = InterconnectModel::default();
        // Short links: electrical is faster (no conversion latency).
        assert!(m.electrical_delay_ns(1.0) < m.optical_delay_ns(1.0));
        // Long links: optical propagation advantage dominates.
        assert!(m.electrical_delay_ns(1000.0) > m.optical_delay_ns(1000.0));
    }

    #[test]
    fn custom_model() {
        let m = InterconnectModel {
            optical_fixed_energy_pj: 1.0,
            ..InterconnectModel::default()
        };
        assert!(m.energy_crossover_mm() < InterconnectModel::default().energy_crossover_mm());
    }
}
