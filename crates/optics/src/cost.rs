//! Hardware-cost accounting.
//!
//! Experiment T3 compares designs by the number of discrete optical parts
//! they need: OTIS units (and their lens counts), OPS couplers, optical
//! multiplexers, beam-splitters, fibers, transmitters and receivers.  The
//! paper's worked example — `SK(6,3,2)` built from 12 `OTIS(6,4)`,
//! 12 `OTIS(4,6)`, 48 multiplexers, 48 beam-splitters and one `OTIS(3,12)` —
//! is exactly an inventory of this kind, and the `otis-core` designs produce
//! theirs programmatically so the counts can be checked against the paper.

use std::collections::BTreeMap;
use std::fmt;

/// A multiset of optical parts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HardwareInventory {
    /// Count of OTIS units keyed by `(G, T)`.
    otis: BTreeMap<(usize, usize), usize>,
    /// Count of OPS couplers keyed by degree.
    couplers: BTreeMap<usize, usize>,
    /// Count of multiplexers keyed by input count.
    multiplexers: BTreeMap<usize, usize>,
    /// Count of beam-splitters keyed by output count.
    splitters: BTreeMap<usize, usize>,
    /// Number of point-to-point fiber links.
    fibers: usize,
    /// Number of optical transmitters.
    transmitters: usize,
    /// Number of optical receivers.
    receivers: usize,
}

impl HardwareInventory {
    /// An empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `OTIS(G, T)` unit.
    pub fn add_otis(&mut self, groups: usize, group_size: usize) {
        *self.otis.entry((groups, group_size)).or_insert(0) += 1;
    }

    /// Records one OPS coupler of the given degree.
    pub fn add_coupler(&mut self, degree: usize) {
        *self.couplers.entry(degree).or_insert(0) += 1;
    }

    /// Records one optical multiplexer with the given number of inputs.
    pub fn add_multiplexer(&mut self, inputs: usize) {
        *self.multiplexers.entry(inputs).or_insert(0) += 1;
    }

    /// Records one beam-splitter with the given number of outputs.
    pub fn add_splitter(&mut self, outputs: usize) {
        *self.splitters.entry(outputs).or_insert(0) += 1;
    }

    /// Records `count` fiber links.
    pub fn add_fibers(&mut self, count: usize) {
        self.fibers += count;
    }

    /// Records `count` transmitters.
    pub fn add_transmitters(&mut self, count: usize) {
        self.transmitters += count;
    }

    /// Records `count` receivers.
    pub fn add_receivers(&mut self, count: usize) {
        self.receivers += count;
    }

    /// Merges another inventory into this one.
    pub fn merge(&mut self, other: &HardwareInventory) {
        for (&key, &count) in &other.otis {
            *self.otis.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &other.couplers {
            *self.couplers.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &other.multiplexers {
            *self.multiplexers.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &other.splitters {
            *self.splitters.entry(key).or_insert(0) += count;
        }
        self.fibers += other.fibers;
        self.transmitters += other.transmitters;
        self.receivers += other.receivers;
    }

    /// Total number of OTIS units of any size.
    pub fn otis_units(&self) -> usize {
        self.otis.values().sum()
    }

    /// Number of `OTIS(G, T)` units of one specific size.
    pub fn otis_units_of(&self, groups: usize, group_size: usize) -> usize {
        self.otis.get(&(groups, group_size)).copied().unwrap_or(0)
    }

    /// Iterator over `((G, T), count)` for all OTIS sizes present.
    pub fn otis_breakdown(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.otis.iter().map(|(&k, &v)| (k, v))
    }

    /// Total number of OPS couplers of any degree.
    pub fn coupler_count(&self) -> usize {
        self.couplers.values().sum()
    }

    /// Number of OPS couplers of one specific degree.
    pub fn couplers_of(&self, degree: usize) -> usize {
        self.couplers.get(&degree).copied().unwrap_or(0)
    }

    /// Total number of multiplexers.
    pub fn multiplexer_count(&self) -> usize {
        self.multiplexers.values().sum()
    }

    /// Total number of beam-splitters.
    pub fn splitter_count(&self) -> usize {
        self.splitters.values().sum()
    }

    /// Total number of fiber links.
    pub fn fiber_count(&self) -> usize {
        self.fibers
    }

    /// Total number of transmitters.
    pub fn transmitter_count(&self) -> usize {
        self.transmitters
    }

    /// Total number of receivers.
    pub fn receiver_count(&self) -> usize {
        self.receivers
    }

    /// Total number of lenses across all OTIS units, assuming the two-plane
    /// construction with `G·T` lenslets per plane.
    pub fn lens_count(&self) -> usize {
        self.otis
            .iter()
            .map(|(&(g, t), &count)| 2 * g * t * count)
            .sum()
    }

    /// Total number of discrete optical parts (everything except lenses,
    /// which are internal to OTIS units).
    pub fn total_parts(&self) -> usize {
        self.otis_units()
            + self.coupler_count()
            + self.multiplexer_count()
            + self.splitter_count()
            + self.fibers
            + self.transmitters
            + self.receivers
    }
}

impl fmt::Display for HardwareInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (&(g, t), &count) in &self.otis {
            writeln!(f, "  {count:>6} x OTIS({g},{t})")?;
        }
        for (&d, &count) in &self.couplers {
            writeln!(f, "  {count:>6} x OPS coupler (degree {d})")?;
        }
        for (&i, &count) in &self.multiplexers {
            writeln!(f, "  {count:>6} x optical multiplexer ({i} inputs)")?;
        }
        for (&o, &count) in &self.splitters {
            writeln!(f, "  {count:>6} x beam-splitter ({o} outputs)")?;
        }
        if self.fibers > 0 {
            writeln!(f, "  {:>6} x fiber link", self.fibers)?;
        }
        if self.transmitters > 0 {
            writeln!(f, "  {:>6} x transmitter", self.transmitters)?;
        }
        if self.receivers > 0 {
            writeln!(f, "  {:>6} x receiver", self.receivers)?;
        }
        writeln!(
            f,
            "  total parts: {}, lenses inside OTIS units: {}",
            self.total_parts(),
            self.lens_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inventory() {
        let inv = HardwareInventory::new();
        assert_eq!(inv.total_parts(), 0);
        assert_eq!(inv.lens_count(), 0);
        assert_eq!(inv.otis_units(), 0);
    }

    #[test]
    fn paper_sk_6_3_2_inventory_by_hand() {
        // §4.2: 12 OTIS(6,4), 12 OTIS(4,6), 48 multiplexers, 48 beam-splitters,
        // one OTIS(3,12).
        let mut inv = HardwareInventory::new();
        for _ in 0..12 {
            inv.add_otis(6, 4);
            inv.add_otis(4, 6);
        }
        for _ in 0..48 {
            inv.add_multiplexer(6);
            inv.add_splitter(6);
        }
        inv.add_otis(3, 12);
        assert_eq!(inv.otis_units(), 25);
        assert_eq!(inv.otis_units_of(6, 4), 12);
        assert_eq!(inv.otis_units_of(4, 6), 12);
        assert_eq!(inv.otis_units_of(3, 12), 1);
        assert_eq!(inv.multiplexer_count(), 48);
        assert_eq!(inv.splitter_count(), 48);
        // Lenses: 12·2·24 + 12·2·24 + 1·2·36 = 1224.
        assert_eq!(inv.lens_count(), 1224);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = HardwareInventory::new();
        a.add_otis(4, 2);
        a.add_coupler(4);
        a.add_transmitters(8);
        let mut b = HardwareInventory::new();
        b.add_otis(4, 2);
        b.add_otis(2, 2);
        b.add_receivers(8);
        b.add_fibers(3);
        a.merge(&b);
        assert_eq!(a.otis_units_of(4, 2), 2);
        assert_eq!(a.otis_units_of(2, 2), 1);
        assert_eq!(a.coupler_count(), 1);
        assert_eq!(a.transmitter_count(), 8);
        assert_eq!(a.receiver_count(), 8);
        assert_eq!(a.fiber_count(), 3);
        assert_eq!(a.total_parts(), 2 + 1 + 1 + 8 + 8 + 3);
    }

    #[test]
    fn display_lists_everything() {
        let mut inv = HardwareInventory::new();
        inv.add_otis(3, 12);
        inv.add_coupler(6);
        inv.add_multiplexer(6);
        inv.add_splitter(6);
        inv.add_fibers(2);
        inv.add_transmitters(4);
        inv.add_receivers(4);
        let text = inv.to_string();
        assert!(text.contains("OTIS(3,12)"));
        assert!(text.contains("OPS coupler"));
        assert!(text.contains("multiplexer"));
        assert!(text.contains("beam-splitter"));
        assert!(text.contains("fiber"));
        assert!(text.contains("total parts"));
    }

    #[test]
    fn breakdown_iterates_sorted() {
        let mut inv = HardwareInventory::new();
        inv.add_otis(6, 4);
        inv.add_otis(3, 12);
        inv.add_otis(6, 4);
        let list: Vec<_> = inv.otis_breakdown().collect();
        assert_eq!(list, vec![((3, 12), 1), ((6, 4), 2)]);
    }

    #[test]
    fn couplers_of_specific_degree() {
        let mut inv = HardwareInventory::new();
        inv.add_coupler(4);
        inv.add_coupler(4);
        inv.add_coupler(6);
        assert_eq!(inv.couplers_of(4), 2);
        assert_eq!(inv.couplers_of(6), 1);
        assert_eq!(inv.couplers_of(8), 0);
        assert_eq!(inv.coupler_count(), 3);
    }
}
