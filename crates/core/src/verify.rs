//! Design verification: does the optical hardware realize the target graph?
//!
//! The paper's Proposition 1 is a proof that a particular assignment of OTIS
//! ports to graph nodes realizes the Imase–Itoh adjacency.  The reproduction
//! goes one step further: every design constructs an explicit netlist, the
//! connectivity is recovered from the netlist by signal tracing alone, and
//! these functions compare the traced connectivity against the target
//! topology arc for arc (point-to-point designs) or hyperarc for hyperarc
//! (multi-OPS designs).  A design "realizes" its topology exactly when
//! verification returns a report rather than an error.

use crate::design::{MultiOpsDesign, PointToPointDesign};
use otis_graphs::{Digraph, StackGraph};
use std::fmt;

/// Why a design failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerificationError {
    /// The design and the target disagree on the number of processors.
    ProcessorCountMismatch {
        /// Processors in the design.
        design: usize,
        /// Nodes in the target topology.
        target: usize,
    },
    /// The design and the target disagree on the number of couplers.
    CouplerCountMismatch {
        /// Couplers in the design.
        design: usize,
        /// Hyperarcs in the target topology.
        target: usize,
    },
    /// The traced adjacency differs from the target adjacency.
    AdjacencyMismatch {
        /// A human-readable description of the first difference found.
        detail: String,
    },
    /// The traced hyperarcs differ from the target hyperarcs.
    HyperarcMismatch {
        /// A human-readable description of the difference.
        detail: String,
    },
    /// The netlist has dangling ports (incomplete wiring).
    IncompleteWiring {
        /// The number of dangling ports.
        dangling: usize,
        /// The first few problems, for diagnostics.
        sample: Vec<String>,
    },
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationError::ProcessorCountMismatch { design, target } => {
                write!(
                    f,
                    "processor count mismatch: design has {design}, target has {target}"
                )
            }
            VerificationError::CouplerCountMismatch { design, target } => {
                write!(
                    f,
                    "coupler count mismatch: design has {design}, target has {target}"
                )
            }
            VerificationError::AdjacencyMismatch { detail } => {
                write!(f, "adjacency mismatch: {detail}")
            }
            VerificationError::HyperarcMismatch { detail } => {
                write!(f, "hyperarc mismatch: {detail}")
            }
            VerificationError::IncompleteWiring { dangling, sample } => {
                write!(
                    f,
                    "incomplete wiring: {dangling} dangling ports (e.g. {sample:?})"
                )
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// A successful verification, with the headline facts worth reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Number of processors checked.
    pub processors: usize,
    /// Number of point-to-point links or OPS couplers checked.
    pub links: usize,
    /// Number of optical components in the netlist.
    pub components: usize,
    /// Worst-case transmitter→receiver optical loss, in dB.
    pub worst_case_loss_db: f64,
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verified: {} processors, {} links/couplers, {} optical components, worst-case loss {:.2} dB",
            self.processors, self.links, self.components, self.worst_case_loss_db
        )
    }
}

/// Verifies a point-to-point design against a target digraph: same node
/// count, and the traced arcs (per node, in transmitter order) equal the
/// target's arcs.
pub fn verify_point_to_point(
    design: &PointToPointDesign,
    target: &Digraph,
) -> Result<VerificationReport, VerificationError> {
    if design.processor_count() != target.node_count() {
        return Err(VerificationError::ProcessorCountMismatch {
            design: design.processor_count(),
            target: target.node_count(),
        });
    }
    let induced =
        design
            .try_induced_digraph()
            .map_err(|e| VerificationError::AdjacencyMismatch {
                detail: e.to_string(),
            })?;
    for u in 0..target.node_count() {
        let got = induced.out_neighbors(u);
        let want = target.out_neighbors(u);
        if got != want {
            return Err(VerificationError::AdjacencyMismatch {
                detail: format!("node {u}: design reaches {got:?}, target expects {want:?}"),
            });
        }
    }
    Ok(VerificationReport {
        processors: design.processor_count(),
        links: target.arc_count(),
        components: design.netlist.component_count(),
        worst_case_loss_db: design.worst_case_loss_db(),
    })
}

/// Verifies a multi-OPS design against a target stack-graph: same processor
/// and coupler counts, the traced hyperarcs equal the target's hyperarcs (as
/// multisets), and the flattened one-hop adjacencies agree.
pub fn verify_multi_ops(
    design: &MultiOpsDesign,
    target: &StackGraph,
) -> Result<VerificationReport, VerificationError> {
    if design.processor_count() != target.node_count() {
        return Err(VerificationError::ProcessorCountMismatch {
            design: design.processor_count(),
            target: target.node_count(),
        });
    }
    if design.coupler_count() != target.hyperarc_count() {
        return Err(VerificationError::CouplerCountMismatch {
            design: design.coupler_count(),
            target: target.hyperarc_count(),
        });
    }
    let induced_h = design.induced_hypergraph();
    let target_h = target.to_hypergraph();
    if !induced_h.same_hyperarcs(&target_h) {
        // Find a telling difference for the error message.
        let detail = first_hyperarc_difference(&induced_h, &target_h);
        return Err(VerificationError::HyperarcMismatch { detail });
    }
    let induced_flat = design.induced_digraph();
    let target_flat = dedup_arcs(&target.flatten());
    if !induced_flat.same_arcs(&target_flat) {
        return Err(VerificationError::AdjacencyMismatch {
            detail: format!(
                "flattened adjacency differs: design has {} arcs, target has {} arcs",
                induced_flat.arc_count(),
                target_flat.arc_count()
            ),
        });
    }
    Ok(VerificationReport {
        processors: design.processor_count(),
        links: design.coupler_count(),
        components: design.netlist.component_count(),
        worst_case_loss_db: design.worst_case_loss_db(),
    })
}

/// Checks that the netlist of a multi-OPS design has no dangling ports.
pub fn verify_fully_wired(design: &MultiOpsDesign) -> Result<(), VerificationError> {
    let problems = design.netlist.dangling_ports();
    if problems.is_empty() {
        Ok(())
    } else {
        Err(VerificationError::IncompleteWiring {
            dangling: problems.len(),
            sample: problems.into_iter().take(3).collect(),
        })
    }
}

/// Removes parallel arcs (keeps one copy of each (u, v)); used because
/// [`MultiOpsDesign::induced_digraph`] collapses parallel reachability while
/// a stack-graph's flattening may contain the same pair through two couplers
/// (e.g. the loop coupler and a Kautz coupler from a group to itself never
/// coexist, but `K⁺_g`'s loop plus the OTIS path can in degenerate cases).
fn dedup_arcs(g: &Digraph) -> Digraph {
    let mut pairs = g.sorted_arc_list();
    pairs.dedup();
    Digraph::from_edges(g.node_count(), &pairs)
}

fn first_hyperarc_difference(
    got: &otis_graphs::Hypergraph,
    want: &otis_graphs::Hypergraph,
) -> String {
    let mut got_c: Vec<_> = got.hyperarcs().iter().map(|a| a.canonical()).collect();
    let mut want_c: Vec<_> = want.hyperarcs().iter().map(|a| a.canonical()).collect();
    got_c.sort();
    want_c.sort();
    for (g, w) in got_c.iter().zip(want_c.iter()) {
        if g != w {
            return format!("design coupler {g:?} vs target hyperarc {w:?}");
        }
    }
    format!(
        "coupler multisets differ in length: {} vs {}",
        got_c.len(),
        want_c.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::Digraph;

    #[test]
    fn error_display() {
        let e = VerificationError::ProcessorCountMismatch {
            design: 4,
            target: 8,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("8"));
        let e2 = VerificationError::AdjacencyMismatch {
            detail: "node 3".into(),
        };
        assert!(e2.to_string().contains("node 3"));
    }

    #[test]
    fn report_display() {
        let r = VerificationReport {
            processors: 72,
            links: 48,
            components: 500,
            worst_case_loss_db: 12.5,
        };
        let text = r.to_string();
        assert!(text.contains("72"));
        assert!(text.contains("48"));
        assert!(text.contains("12.5"));
    }

    #[test]
    fn dedup_arcs_removes_parallels() {
        let g = Digraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        let d = dedup_arcs(&g);
        assert_eq!(d.arc_count(), 2);
        assert_eq!(d.sorted_arc_list(), vec![(0, 1), (1, 0)]);
    }
}
