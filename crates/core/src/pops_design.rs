//! §4.1: the POPS network on OTIS (Fig. 11).
//!
//! `POPS(t, g)` is built from three kinds of OTIS units:
//!
//! * per group, one transmitter-side `OTIS(t, g)` plus `g` optical
//!   multiplexers (the §3.1 building block, Fig. 8);
//! * per group, one receiver-side `OTIS(g, t)` plus `g` beam-splitters
//!   (Fig. 9);
//! * one central `OTIS(g, g)`, which realizes the interconnections of the
//!   quotient `K⁺_g`: the multiplexer outputs are its inputs and the
//!   beam-splitter inputs are its outputs.
//!
//! With the wiring chosen here, the multiplexer `m` of group `i` together
//! with the beam-splitter it reaches through the central OTIS forms the OPS
//! coupler `(i, g−1−m)` — inputs from group `i`, outputs to group `g−1−m` —
//! so all `g²` couplers of the POPS network are realized exactly once.
//! [`PopsDesign::verify`] recovers the couplers from the netlist by signal
//! tracing and checks them against the stack-graph model `ς(t, K⁺_g)`.

use crate::design::MultiOpsDesign;
use crate::group::{add_receiver_side_group, add_transmitter_side_group};
use crate::verify::{verify_multi_ops, VerificationError, VerificationReport};
use otis_optics::components::ComponentKind;
use otis_optics::netlist::{Netlist, PortRef};
use otis_optics::{HardwareInventory, Otis};
use otis_topologies::Pops;
use std::collections::BTreeMap;

/// The OTIS-based optical design of `POPS(t, g)`.
#[derive(Debug, Clone)]
pub struct PopsDesign {
    t: usize,
    g: usize,
    topology: Pops,
    design: MultiOpsDesign,
}

impl PopsDesign {
    /// Builds the optical design of `POPS(t, g)`.
    pub fn new(t: usize, g: usize) -> Self {
        assert!(t >= 1 && g >= 1, "POPS parameters must be >= 1");
        let topology = Pops::new(t, g);
        let mut netlist = Netlist::new();

        // Per-group building blocks.
        let tx_groups: Vec<_> = (0..g)
            .map(|i| add_transmitter_side_group(&mut netlist, t, g, &format!("group {i}")))
            .collect();
        let rx_groups: Vec<_> = (0..g)
            .map(|j| add_receiver_side_group(&mut netlist, t, g, &format!("group {j}")))
            .collect();

        // Central OTIS(g, g) realizing K⁺_g.
        let core = netlist.add(
            ComponentKind::Otis {
                groups: g,
                group_size: g,
            },
            format!("central OTIS({g},{g})"),
        );
        let core_otis = Otis::new(g, g);

        // Multiplexer m of group i drives core input (i, m); core output
        // (p, q) drives beam-splitter q of group p.
        for (i, txg) in tx_groups.iter().enumerate() {
            for (m, &mux) in txg.multiplexers.iter().enumerate() {
                let flat = core_otis.tx_index(i, m);
                netlist.connect(PortRef::new(mux, 0), PortRef::new(core, flat));
            }
        }
        for (p, rxg) in rx_groups.iter().enumerate() {
            for (q, &split) in rxg.splitters.iter().enumerate() {
                let flat = core_otis.rx_index(p, q);
                netlist.connect(PortRef::new(core, flat), PortRef::new(split, 0));
            }
        }

        // Processor maps: processor (group i, index y) has flat id i·t + y.
        let mut transmitters = Vec::with_capacity(t * g);
        let mut receivers = Vec::with_capacity(t * g);
        let mut receiver_owner = BTreeMap::new();
        for i in 0..g {
            for y in 0..t {
                let p = i * t + y;
                transmitters.push(tx_groups[i].transmitters[y].clone());
                receivers.push(rx_groups[i].receivers[y].clone());
                for &rx in &rx_groups[i].receivers[y] {
                    receiver_owner.insert(rx, p);
                }
            }
        }

        // Couplers in the order of the quotient arcs of K⁺_g (row-major
        // (i, j)): coupler (i, j) is multiplexer g−1−j of group i, and the
        // splitter it reaches through the central OTIS.
        let mut couplers = Vec::with_capacity(g * g);
        for (i, tx_group) in tx_groups.iter().enumerate() {
            for j in 0..g {
                let m = g - 1 - j;
                let mux = tx_group.multiplexers[m];
                // Follow the central OTIS: input (i, m) -> output (p, q).
                let (p, q) = core_otis.map_pair(i, m);
                let splitter = rx_groups[p].splitters[q];
                couplers.push((mux, splitter));
            }
        }

        PopsDesign {
            t,
            g,
            topology,
            design: MultiOpsDesign {
                netlist,
                transmitters,
                receivers,
                receiver_owner,
                couplers,
            },
        }
    }

    /// Group size `t`.
    pub fn group_size(&self) -> usize {
        self.t
    }

    /// Number of groups `g`.
    pub fn group_count(&self) -> usize {
        self.g
    }

    /// The POPS topology this design realizes.
    pub fn topology(&self) -> &Pops {
        &self.topology
    }

    /// The underlying multi-OPS design (netlist + maps).
    pub fn design(&self) -> &MultiOpsDesign {
        &self.design
    }

    /// Verifies, by signal tracing, that the design realizes
    /// `POPS(t, g) = ς(t, K⁺_g)` hyperarc for hyperarc.
    pub fn verify(&self) -> Result<VerificationReport, VerificationError> {
        verify_multi_ops(&self.design, self.topology.stack_graph())
    }

    /// The parts list.  For `POPS(t, g)` this is `g` × `OTIS(t, g)`,
    /// `g` × `OTIS(g, t)`, one `OTIS(g, g)`, `g²` multiplexers, `g²`
    /// beam-splitters, `t·g·g` transmitters and `t·g·g` receivers.
    pub fn inventory(&self) -> HardwareInventory {
        self.design.inventory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_pops_4_2_is_realized() {
        let design = PopsDesign::new(4, 2);
        let report = design.verify().expect("POPS(4,2) OTIS design must verify");
        assert_eq!(report.processors, 8);
        assert_eq!(report.links, 4);
    }

    #[test]
    fn fig11_hardware_inventory() {
        // Fig. 11 shows the transmitter-side OTIS(4,2) blocks, the central
        // OTIS(2,2) and the receiver-side OTIS(2,4) blocks, plus the 4
        // multiplexers and 4 beam-splitters of the g² = 4 couplers.
        let inv = PopsDesign::new(4, 2).inventory();
        assert_eq!(inv.otis_units_of(4, 2), 2);
        assert_eq!(inv.otis_units_of(2, 4), 2);
        assert_eq!(inv.otis_units_of(2, 2), 1);
        assert_eq!(inv.otis_units(), 5);
        assert_eq!(inv.multiplexer_count(), 4);
        assert_eq!(inv.splitter_count(), 4);
        assert_eq!(inv.transmitter_count(), 16);
        assert_eq!(inv.receiver_count(), 16);
    }

    #[test]
    fn verification_sweep() {
        for (t, g) in [(1, 2), (2, 2), (4, 2), (2, 3), (3, 3), (2, 4), (5, 3)] {
            PopsDesign::new(t, g)
                .verify()
                .unwrap_or_else(|e| panic!("POPS({t},{g}) design failed: {e}"));
        }
    }

    #[test]
    fn netlist_is_fully_wired() {
        let design = PopsDesign::new(3, 3);
        assert!(design.design().netlist.is_fully_wired());
        assert!(crate::verify::verify_fully_wired(design.design()).is_ok());
    }

    #[test]
    fn coupler_order_matches_quotient_arcs() {
        // Coupler (i, j) must have its tail in group i and its head in
        // group j, in the row-major order used by the Pops topology.
        let design = PopsDesign::new(3, 3);
        let h = design.design().induced_hypergraph();
        let pops = design.topology();
        for i in 0..3 {
            for j in 0..3 {
                let c = pops.coupler_index(i, j);
                let arc = h.hyperarc(c).unwrap();
                for &p in &arc.tail {
                    assert_eq!(pops.processor_label(p).0, i, "coupler ({i},{j}) tail");
                }
                for &p in &arc.head {
                    assert_eq!(pops.processor_label(p).0, j, "coupler ({i},{j}) head");
                }
                assert_eq!(arc.tail.len(), 3);
                assert_eq!(arc.head.len(), 3);
            }
        }
    }

    #[test]
    fn single_hop_worst_case_loss() {
        // Path: tx -> OTIS(t,g) -> mux -> OTIS(g,g) -> splitter -> OTIS(g,t) -> rx.
        let design = PopsDesign::new(4, 2);
        let loss = design.design().worst_case_loss_db();
        let expected = 3.0 * otis_optics::power::OTIS_LOSS_DB
            + otis_optics::power::MULTIPLEXER_LOSS_DB
            + otis_optics::power::splitting_loss_db(4)
            + otis_optics::power::SPLITTER_EXCESS_LOSS_DB;
        assert!(
            (loss - expected).abs() < 1e-9,
            "loss {loss} vs expected {expected}"
        );
    }

    #[test]
    fn accessors() {
        let design = PopsDesign::new(4, 2);
        assert_eq!(design.group_size(), 4);
        assert_eq!(design.group_count(), 2);
        assert_eq!(design.topology().node_count(), 8);
        assert_eq!(design.design().coupler_count(), 4);
    }
}
