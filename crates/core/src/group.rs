//! The group-of-processors building block (§3.1 of the paper).
//!
//! A group of `t` processors needs to feed the inputs of `g` OPS couplers
//! (every processor must be able to transmit into every coupler) and to
//! listen to the outputs of `g` OPS couplers.  The paper realizes both sides
//! with one OTIS each:
//!
//! * **transmitter side** (Fig. 8): one `OTIS(t, g)` plus `g` optical
//!   multiplexers.  Processor `j` owns the `g` transmitters of OTIS input
//!   group `j`; its transmitter at offset `α` is imaged onto OTIS output
//!   `(g−1−α, t−1−j)`, i.e. input `t−1−j` of multiplexer `g−1−α`.  Every
//!   processor therefore reaches every multiplexer, each multiplexer collects
//!   exactly one transmitter of every processor, and the multiplexer's output
//!   is the input half of one OPS coupler.
//! * **receiver side** (Fig. 9): one `OTIS(g, t)` plus `g` beam-splitters.
//!   Beam-splitter `i` (the output half of one OPS coupler) owns the `t`
//!   transmit positions of OTIS input group `i`; its output at offset `j` is
//!   imaged onto OTIS output `(t−1−j, g−1−i)`, i.e. receiver `g−1−i` of
//!   processor `t−1−j`.  Every splitter therefore reaches every processor of
//!   the group.
//!
//! Multiplexer outputs and splitter inputs are deliberately left dangling —
//! the network-level designs (`pops_design`, `stack_kautz_design`) wire them
//! through the central optical interconnection network.

use otis_optics::components::ComponentKind;
use otis_optics::netlist::{Netlist, PortRef};
use otis_optics::ComponentId;

/// The transmitter-side half of a group: `t` processors × `g` transmitters,
/// one `OTIS(t, g)`, `g` multiplexers whose outputs are left unconnected.
#[derive(Debug, Clone)]
pub struct TransmitterSideGroup {
    /// Group size `t`.
    pub t: usize,
    /// Number of couplers fed by the group, `g`.
    pub g: usize,
    /// The OTIS component.
    pub otis: ComponentId,
    /// `transmitters[j][alpha]`: transmitter at OTIS input `(j, alpha)`,
    /// owned by processor `j` of the group.
    pub transmitters: Vec<Vec<ComponentId>>,
    /// `multiplexers[m]`: the multiplexer collecting OTIS output group `m`.
    pub multiplexers: Vec<ComponentId>,
}

impl TransmitterSideGroup {
    /// The transmitter of `processor` whose light ends up in `multiplexer`
    /// (both 0-based within the group).
    pub fn transmitter_feeding(&self, processor: usize, multiplexer: usize) -> ComponentId {
        assert!(
            processor < self.t && multiplexer < self.g,
            "indices out of range"
        );
        self.transmitters[processor][self.g - 1 - multiplexer]
    }
}

/// Adds the transmitter-side block of one group to `netlist`.
pub fn add_transmitter_side_group(
    netlist: &mut Netlist,
    t: usize,
    g: usize,
    label_prefix: &str,
) -> TransmitterSideGroup {
    assert!(t >= 1 && g >= 1, "group parameters must be >= 1");
    let otis = netlist.add(
        ComponentKind::Otis {
            groups: t,
            group_size: g,
        },
        format!("{label_prefix} transmitter-side OTIS({t},{g})"),
    );
    let transmitters: Vec<Vec<ComponentId>> = (0..t)
        .map(|j| {
            (0..g)
                .map(|alpha| {
                    netlist.add(
                        ComponentKind::Transmitter,
                        format!("{label_prefix} processor {j} transmitter {alpha}"),
                    )
                })
                .collect()
        })
        .collect();
    let multiplexers: Vec<ComponentId> = (0..g)
        .map(|m| {
            netlist.add(
                ComponentKind::Multiplexer { inputs: t },
                format!("{label_prefix} multiplexer {m}"),
            )
        })
        .collect();

    // Wire transmitters into the OTIS inputs and the OTIS outputs into the
    // multiplexers, following the transpose formula.
    for (j, row) in transmitters.iter().enumerate() {
        for (alpha, &tx) in row.iter().enumerate() {
            let input_flat = j * g + alpha;
            netlist.connect(PortRef::new(tx, 0), PortRef::new(otis, input_flat));
        }
    }
    for (m, &mux) in multiplexers.iter().enumerate() {
        for q in 0..t {
            let output_flat = m * t + q;
            netlist.connect(PortRef::new(otis, output_flat), PortRef::new(mux, q));
        }
    }
    TransmitterSideGroup {
        t,
        g,
        otis,
        transmitters,
        multiplexers,
    }
}

/// The receiver-side half of a group: `g` beam-splitters whose inputs are
/// left unconnected, one `OTIS(g, t)`, and `t` processors × `g` receivers.
#[derive(Debug, Clone)]
pub struct ReceiverSideGroup {
    /// Group size `t`.
    pub t: usize,
    /// Number of couplers heard by the group, `g`.
    pub g: usize,
    /// The OTIS component.
    pub otis: ComponentId,
    /// `splitters[i]`: the beam-splitter occupying OTIS input group `i`.
    pub splitters: Vec<ComponentId>,
    /// `receivers[p][q]`: receiver at OTIS output `(p, q)`, owned by
    /// processor `p` of the group.
    pub receivers: Vec<Vec<ComponentId>>,
}

impl ReceiverSideGroup {
    /// The receiver of `processor` that listens to `splitter` (both 0-based
    /// within the group).
    pub fn receiver_from(&self, processor: usize, splitter: usize) -> ComponentId {
        assert!(
            processor < self.t && splitter < self.g,
            "indices out of range"
        );
        self.receivers[processor][self.g - 1 - splitter]
    }
}

/// Adds the receiver-side block of one group to `netlist`.
pub fn add_receiver_side_group(
    netlist: &mut Netlist,
    t: usize,
    g: usize,
    label_prefix: &str,
) -> ReceiverSideGroup {
    assert!(t >= 1 && g >= 1, "group parameters must be >= 1");
    let otis = netlist.add(
        ComponentKind::Otis {
            groups: g,
            group_size: t,
        },
        format!("{label_prefix} receiver-side OTIS({g},{t})"),
    );
    let splitters: Vec<ComponentId> = (0..g)
        .map(|i| {
            netlist.add(
                ComponentKind::BeamSplitter { outputs: t },
                format!("{label_prefix} beam-splitter {i}"),
            )
        })
        .collect();
    let receivers: Vec<Vec<ComponentId>> = (0..t)
        .map(|p| {
            (0..g)
                .map(|q| {
                    netlist.add(
                        ComponentKind::Receiver,
                        format!("{label_prefix} processor {p} receiver {q}"),
                    )
                })
                .collect()
        })
        .collect();

    for (i, &split) in splitters.iter().enumerate() {
        for j in 0..t {
            let input_flat = i * t + j;
            netlist.connect(PortRef::new(split, j), PortRef::new(otis, input_flat));
        }
    }
    for (p, row) in receivers.iter().enumerate() {
        for (q, &rx) in row.iter().enumerate() {
            let output_flat = p * g + q;
            netlist.connect(PortRef::new(otis, output_flat), PortRef::new(rx, 0));
        }
    }
    ReceiverSideGroup {
        t,
        g,
        otis,
        splitters,
        receivers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_optics::trace::{reachable_receivers, trace_from_transmitter};

    #[test]
    fn fig8_group_of_6_processors_4_multiplexers() {
        // Fig. 8: a group of 6 processors connected to 4 optical multiplexers
        // through OTIS(6, 4).
        let mut n = Netlist::new();
        let g = add_transmitter_side_group(&mut n, 6, 4, "fig8");
        assert_eq!(g.transmitters.len(), 6);
        assert_eq!(g.multiplexers.len(), 4);
        let inv = n.inventory();
        assert_eq!(inv.otis_units_of(6, 4), 1);
        assert_eq!(inv.multiplexer_count(), 4);
        assert_eq!(inv.transmitter_count(), 24);
    }

    #[test]
    fn every_processor_feeds_every_multiplexer_exactly_once() {
        let mut n = Netlist::new();
        let g = add_transmitter_side_group(&mut n, 5, 3, "test");
        // For each processor and multiplexer, exactly one of the processor's
        // transmitters ends at that multiplexer; and transmitter_feeding
        // names it correctly.
        for j in 0..5 {
            for m in 0..3 {
                let expected_tx = g.transmitter_feeding(j, m);
                let mut count = 0;
                for &tx in &g.transmitters[j] {
                    // Follow the wiring: tx -> otis input -> otis output -> mux input.
                    let dest = n.destination(PortRef::new(tx, 0)).unwrap();
                    assert_eq!(dest.component, g.otis);
                    let outs = n.component(g.otis).kind.propagate(dest.port);
                    let mux_port = n.destination(PortRef::new(g.otis, outs[0].0)).unwrap();
                    if mux_port.component == g.multiplexers[m] {
                        count += 1;
                        assert_eq!(tx, expected_tx);
                    }
                }
                assert_eq!(count, 1, "processor {j} -> multiplexer {m}");
            }
        }
    }

    #[test]
    fn each_multiplexer_collects_one_transmitter_per_processor() {
        let mut n = Netlist::new();
        let g = add_transmitter_side_group(&mut n, 4, 4, "test");
        // Each multiplexer has t inputs, all driven (no dangling mux inputs).
        for &mux in &g.multiplexers {
            for port in 0..4 {
                assert!(n.driver(PortRef::new(mux, port)).is_some());
            }
        }
    }

    #[test]
    fn fig9_splitters_reach_the_whole_group() {
        // Fig. 9: 3 beam-splitters connected to a group of 5 processors
        // through OTIS(3, 5).
        let mut n = Netlist::new();
        let g = add_receiver_side_group(&mut n, 5, 3, "fig9");
        assert_eq!(g.splitters.len(), 3);
        assert_eq!(g.receivers.len(), 5);
        let inv = n.inventory();
        assert_eq!(inv.otis_units_of(3, 5), 1);
        assert_eq!(inv.splitter_count(), 3);
        assert_eq!(inv.receiver_count(), 15);
    }

    #[test]
    fn splitter_broadcast_covers_every_processor() {
        // Drive each splitter from a probe transmitter and check the light
        // reaches exactly one receiver of every processor of the group.
        let mut n = Netlist::new();
        let g = add_receiver_side_group(&mut n, 5, 3, "test");
        let probes: Vec<ComponentId> = (0..3)
            .map(|i| {
                let probe = n.add(ComponentKind::Transmitter, format!("probe {i}"));
                n.connect(PortRef::new(probe, 0), PortRef::new(g.splitters[i], 0));
                probe
            })
            .collect();
        for (i, &probe) in probes.iter().enumerate() {
            let reached = reachable_receivers(&n, probe);
            assert_eq!(reached.len(), 5, "splitter {i} must reach 5 processors");
            for p in 0..5 {
                let expected = g.receiver_from(p, i);
                assert!(reached.contains(&expected));
            }
        }
    }

    #[test]
    fn transmitter_to_mux_loss_is_otis_plus_mux() {
        let mut n = Netlist::new();
        let g = add_transmitter_side_group(&mut n, 3, 2, "loss");
        // Connect each mux to a splitter-less receiver probe to complete paths.
        for m in 0..2 {
            let rx = n.add(ComponentKind::Receiver, format!("probe rx {m}"));
            n.connect(PortRef::new(g.multiplexers[m], 0), PortRef::new(rx, 0));
        }
        let hits = trace_from_transmitter(&n, g.transmitters[0][0]);
        assert_eq!(hits.len(), 1);
        let expected = otis_optics::power::OTIS_LOSS_DB + otis_optics::power::MULTIPLEXER_LOSS_DB;
        assert!((hits[0].loss_db - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "indices out of range")]
    fn transmitter_feeding_checks_range() {
        let mut n = Netlist::new();
        let g = add_transmitter_side_group(&mut n, 3, 2, "x");
        g.transmitter_feeding(3, 0);
    }
}
