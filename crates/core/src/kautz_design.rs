//! Corollary 1: the Kautz graph `KG(d, k)` on a single OTIS.
//!
//! Since `KG(d, k) = II(d, d^(k-1)(d+1))` (§2.6 of the paper), the OTIS
//! realization of Imase–Itoh graphs immediately yields an OTIS realization of
//! Kautz graphs: one `OTIS(d, d^(k-1)(d+1))`.
//!
//! The design inherits the Imase–Itoh node numbering (integers mod `n`); the
//! correspondence with Kautz word labels is the graph isomorphism
//! `II(d, n) ≅ KG(d, k)` (checked for small instances by
//! [`KautzDesign::verify_kautz_isomorphism`] and, at scale, by the shared
//! invariants: degree, node count, diameter).  Routing on the design
//! therefore uses the Imase–Itoh arithmetic router from `otis-routing`, which
//! the paper's shortest-path-by-labels routing maps onto through the same
//! isomorphism.

use crate::imase_itoh_design::ImaseItohDesign;
use crate::verify::{VerificationError, VerificationReport};
use otis_graphs::are_isomorphic;
use otis_optics::HardwareInventory;
use otis_topologies::{kautz, kautz_node_count};

/// The OTIS-based optical design of `KG(d, k)`.
#[derive(Debug, Clone)]
pub struct KautzDesign {
    d: usize,
    k: usize,
    inner: ImaseItohDesign,
}

impl KautzDesign {
    /// Builds the design for `KG(d, k)` as `II(d, d^(k-1)(d+1))` on
    /// `OTIS(d, d^(k-1)(d+1))`.
    pub fn new(d: usize, k: usize) -> Self {
        let n = kautz_node_count(d, k);
        KautzDesign {
            d,
            k,
            inner: ImaseItohDesign::new(d, n),
        }
    }

    /// Kautz degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Kautz diameter `k`.
    pub fn diameter(&self) -> usize {
        self.k
    }

    /// Number of nodes `d^(k-1)(d+1)`.
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// The underlying Imase–Itoh design (Proposition 1 machinery).
    pub fn imase_itoh_design(&self) -> &ImaseItohDesign {
        &self.inner
    }

    /// Verifies that the optical design realizes `II(d, d^(k-1)(d+1))`
    /// exactly (Proposition 1 applied at the Kautz size).
    pub fn verify(&self) -> Result<VerificationReport, VerificationError> {
        self.inner.verify()
    }

    /// Checks (by explicit digraph isomorphism search) that the realized
    /// graph is isomorphic to the word-labelled Kautz graph `KG(d, k)`.
    /// Exponential in the worst case — intended for the small instances used
    /// in tests and figure reproduction; larger instances should rely on
    /// [`KautzDesign::verify`] plus the `II(d, n) = KG(d, k)` identity
    /// established in `otis-topologies`.
    pub fn verify_kautz_isomorphism(&self) -> bool {
        are_isomorphic(&self.inner.target(), &kautz(self.d, self.k))
    }

    /// The parts list: one `OTIS(d, d^(k-1)(d+1))` plus `d` transmitters and
    /// `d` receivers per node.
    pub fn inventory(&self) -> HardwareInventory {
        self.inner.inventory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_1_kg_3_2() {
        // KG(3,2) = II(3,12) realized by OTIS(3,12).
        let design = KautzDesign::new(3, 2);
        assert_eq!(design.node_count(), 12);
        let report = design.verify().expect("Corollary 1 must hold");
        assert_eq!(report.processors, 12);
        assert!(design.verify_kautz_isomorphism());
    }

    #[test]
    fn corollary_1_sweep() {
        for (d, k) in [(2, 2), (2, 3), (3, 2), (2, 4), (4, 2), (3, 3)] {
            let design = KautzDesign::new(d, k);
            design
                .verify()
                .unwrap_or_else(|e| panic!("KG({d},{k}) OTIS design failed: {e}"));
        }
    }

    #[test]
    fn small_instances_are_kautz_isomorphic() {
        for (d, k) in [(2, 2), (2, 3), (3, 2)] {
            assert!(
                KautzDesign::new(d, k).verify_kautz_isomorphism(),
                "II-realization of KG({d},{k}) is not isomorphic to the word construction"
            );
        }
    }

    #[test]
    fn inventory_uses_a_single_otis() {
        let design = KautzDesign::new(2, 3);
        let inv = design.inventory();
        assert_eq!(inv.otis_units(), 1);
        assert_eq!(inv.otis_units_of(2, 12), 1);
        assert_eq!(inv.transmitter_count(), 24);
        assert_eq!(inv.receiver_count(), 24);
    }

    #[test]
    fn accessors() {
        let design = KautzDesign::new(3, 2);
        assert_eq!(design.degree(), 3);
        assert_eq!(design.diameter(), 2);
        assert_eq!(design.imase_itoh_design().node_count(), 12);
    }
}
