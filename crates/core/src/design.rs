//! Common representation of an optical design.
//!
//! Every design in this crate boils down to the same data: an optical
//! [`Netlist`], plus bookkeeping that says which transmitter / receiver
//! component belongs to which logical processor (and, for multi-OPS designs,
//! which OPS coupler each multiplexer/beam-splitter pair forms).  From that,
//! the *induced* connectivity — which processors each processor can reach in
//! one optical hop, and through which coupler — is recovered purely by signal
//! tracing, never by construction-time assumption, so comparing it against
//! the target topology is a genuine end-to-end check of the design.

use otis_graphs::{Digraph, DigraphBuilder, HyperArc, Hypergraph};
use otis_optics::trace::trace_from_transmitter;
use otis_optics::{ComponentId, HardwareInventory, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// Why the connectivity induced by a netlist could not be interpreted as the
/// intended kind of graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InducedGraphError {
    /// A transmitter of a point-to-point design reaches zero or several
    /// receivers instead of exactly one.
    FanOutMismatch {
        /// The owning processor.
        processor: usize,
        /// The offending transmitter component.
        transmitter: ComponentId,
        /// How many receivers its light reaches.
        receivers_reached: usize,
    },
    /// A traced receiver is not registered to any processor.
    UnownedReceiver {
        /// The transmitter whose trace hit the receiver.
        transmitter: ComponentId,
        /// The receiver with no owning processor.
        receiver: ComponentId,
    },
}

impl fmt::Display for InducedGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InducedGraphError::FanOutMismatch {
                processor,
                transmitter,
                receivers_reached,
            } => {
                write!(
                    f,
                    "transmitter {transmitter} of processor {processor} reaches \
                     {receivers_reached} receivers, expected exactly 1"
                )
            }
            InducedGraphError::UnownedReceiver {
                transmitter,
                receiver,
            } => {
                write!(
                    f,
                    "receiver {receiver} reached from transmitter {transmitter} \
                     belongs to no processor"
                )
            }
        }
    }
}

impl std::error::Error for InducedGraphError {}

/// A point-to-point design: every processor owns a set of transmitters and a
/// set of receivers, and each transmitter illuminates exactly one receiver.
#[derive(Debug, Clone)]
pub struct PointToPointDesign {
    /// The optical netlist.
    pub netlist: Netlist,
    /// `transmitters[u][a]` is the component id of processor `u`'s `a`-th
    /// transmitter (`a` is 0-based; the paper's α is `a + 1`).
    pub transmitters: Vec<Vec<ComponentId>>,
    /// `receivers[u][b]` is the component id of processor `u`'s `b`-th receiver.
    pub receivers: Vec<Vec<ComponentId>>,
    /// Reverse map from receiver component id to its owning processor.
    pub receiver_owner: BTreeMap<ComponentId, usize>,
}

impl PointToPointDesign {
    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.transmitters.len()
    }

    /// The digraph on processors induced by tracing every transmitter:
    /// one arc per transmitter, from its owner to the owner of the receiver
    /// it reaches.  Arcs leaving a processor appear in transmitter order, so
    /// the α-th arc of the result corresponds to the α-th transmitter.
    ///
    /// Returns an [`InducedGraphError`] when a transmitter reaches zero or
    /// more than one receiver (a point-to-point design must be exactly
    /// 1-to-1) or when a traced receiver is not registered to a processor.
    pub fn try_induced_digraph(&self) -> Result<Digraph, InducedGraphError> {
        let n = self.processor_count();
        let mut b = DigraphBuilder::new(n);
        for (u, txs) in self.transmitters.iter().enumerate() {
            for &tx in txs {
                let hits = trace_from_transmitter(&self.netlist, tx);
                if hits.len() != 1 {
                    return Err(InducedGraphError::FanOutMismatch {
                        processor: u,
                        transmitter: tx,
                        receivers_reached: hits.len(),
                    });
                }
                let owner = *self.receiver_owner.get(&hits[0].receiver).ok_or(
                    InducedGraphError::UnownedReceiver {
                        transmitter: tx,
                        receiver: hits[0].receiver,
                    },
                )?;
                b.add_arc(u, owner);
            }
        }
        Ok(b.build())
    }

    /// Panicking wrapper around [`PointToPointDesign::try_induced_digraph`],
    /// kept for call sites that treat a malformed design as a bug.
    ///
    /// # Panics
    /// Panics with the [`InducedGraphError`] message when the design is not
    /// exactly 1-to-1.
    pub fn induced_digraph(&self) -> Digraph {
        self.try_induced_digraph()
            .unwrap_or_else(|e| panic!("malformed point-to-point design: {e}"))
    }

    /// The parts list of the design.
    pub fn inventory(&self) -> HardwareInventory {
        self.netlist.inventory()
    }

    /// Worst-case optical loss over all transmitter→receiver paths, in dB.
    pub fn worst_case_loss_db(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for txs in &self.transmitters {
            for &tx in txs {
                for hit in trace_from_transmitter(&self.netlist, tx) {
                    worst = worst.max(hit.loss_db);
                }
            }
        }
        worst
    }
}

/// A multi-OPS design: processors own transmitters/receivers, and the design
/// also records which multiplexer + beam-splitter pair forms each OPS
/// coupler.
#[derive(Debug, Clone)]
pub struct MultiOpsDesign {
    /// The optical netlist.
    pub netlist: Netlist,
    /// `transmitters[p][a]`: processor `p`'s `a`-th transmitter component.
    pub transmitters: Vec<Vec<ComponentId>>,
    /// `receivers[p][b]`: processor `p`'s `b`-th receiver component.
    pub receivers: Vec<Vec<ComponentId>>,
    /// Reverse map from receiver component id to its owning processor.
    pub receiver_owner: BTreeMap<ComponentId, usize>,
    /// For every OPS coupler (in target hyperarc order): the multiplexer
    /// component forming its input half and the beam-splitter (or fiber, for
    /// loop couplers realized in guided optics) forming its output half.
    pub couplers: Vec<(ComponentId, ComponentId)>,
}

impl MultiOpsDesign {
    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.transmitters.len()
    }

    /// Number of OPS couplers.
    pub fn coupler_count(&self) -> usize {
        self.couplers.len()
    }

    /// The digraph on processors induced by tracing every transmitter: an arc
    /// `u → v` whenever some transmitter of `u` reaches some receiver of `v`.
    /// Parallel arcs from distinct transmitters/couplers are collapsed.
    pub fn induced_digraph(&self) -> Digraph {
        let n = self.processor_count();
        let mut adjacency: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for (u, txs) in self.transmitters.iter().enumerate() {
            for &tx in txs {
                for hit in trace_from_transmitter(&self.netlist, tx) {
                    let owner = *self
                        .receiver_owner
                        .get(&hit.receiver)
                        .expect("traced receiver must belong to a processor");
                    adjacency[u].insert(owner);
                }
            }
        }
        let mut b = DigraphBuilder::new(n);
        for (u, outs) in adjacency.iter().enumerate() {
            for &v in outs {
                b.add_arc(u, v);
            }
        }
        b.build()
    }

    /// The hypergraph on processors induced by the couplers: for every
    /// coupler, the tail is the set of processors owning a transmitter that
    /// reaches the coupler's multiplexer, and the head is the set of
    /// processors reached from it, both recovered by tracing.
    pub fn induced_hypergraph(&self) -> Hypergraph {
        let n = self.processor_count();
        let mut h = Hypergraph::new(n);

        // Tail sets: trace every transmitter once and remember which couplers
        // (identified by their splitter/fiber component) it reaches... but a
        // transmitter reaches *receivers*, so instead identify the coupler by
        // tracing from the multiplexer side: a processor is in the tail of a
        // coupler iff one of its transmitters' paths passes through the
        // coupler's multiplexer.  We detect that by tracing with the coupler's
        // multiplexer isolated: cheaper and simpler is to recompute tails from
        // the wiring: follow each transmitter until the first multiplexer hit.
        let mut mux_tail: BTreeMap<ComponentId, Vec<usize>> = BTreeMap::new();
        for (p, txs) in self.transmitters.iter().enumerate() {
            for &tx in txs {
                if let Some(mux) = first_component_hit(&self.netlist, tx) {
                    mux_tail.entry(mux).or_default().push(p);
                }
            }
        }

        for &(mux, splitter_or_fiber) in &self.couplers {
            let mut tail = mux_tail.get(&mux).cloned().unwrap_or_default();
            tail.sort_unstable();
            tail.dedup();
            // Head: processors owning a receiver downstream of the splitter.
            // We find them by tracing from every transmitter in the tail and
            // keeping the receivers whose path goes through this coupler; the
            // designs guarantee each transmitter feeds exactly one mux, so
            // the receivers reached from a tail transmitter through this mux
            // are exactly the coupler's head.
            let mut head: Vec<usize> = Vec::new();
            if let Some(&p) = tail.first() {
                // Use the transmitter of p that feeds this mux.
                for &tx in &self.transmitters[p] {
                    if first_component_hit(&self.netlist, tx) == Some(mux) {
                        for hit in trace_from_transmitter(&self.netlist, tx) {
                            head.push(self.receiver_owner[&hit.receiver]);
                        }
                        break;
                    }
                }
            }
            head.sort_unstable();
            head.dedup();
            let _ = splitter_or_fiber;
            h.add_hyperarc(HyperArc::new(tail, head))
                .expect("induced hyperarc endpoints are valid processors");
        }
        h
    }

    /// The parts list of the design.
    pub fn inventory(&self) -> HardwareInventory {
        self.netlist.inventory()
    }

    /// Worst-case optical loss over all transmitter→receiver paths, in dB.
    pub fn worst_case_loss_db(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for txs in &self.transmitters {
            for &tx in txs {
                for hit in trace_from_transmitter(&self.netlist, tx) {
                    worst = worst.max(hit.loss_db);
                }
            }
        }
        worst
    }
}

/// Follows the wiring from a transmitter until the first multiplexer, OPS
/// coupler or fiber component is reached, passing transparently through OTIS
/// units.  Returns `None` when the transmitter's light never reaches such a
/// component (dangling design).
fn first_component_hit(netlist: &Netlist, transmitter: ComponentId) -> Option<ComponentId> {
    use otis_optics::components::ComponentKind;
    use otis_optics::netlist::PortRef;
    let mut port = PortRef::new(transmitter, 0);
    for _ in 0..netlist.component_count() + 1 {
        let next = netlist.destination(port)?;
        match netlist.component(next.component).kind {
            ComponentKind::Multiplexer { .. }
            | ComponentKind::OpsCoupler { .. }
            | ComponentKind::Fiber => return Some(next.component),
            ComponentKind::Receiver => return None,
            ComponentKind::Otis { .. } => {
                // OTIS is 1-to-1: follow through.
                let kind = netlist.component(next.component).kind;
                let outs = kind.propagate(next.port);
                debug_assert_eq!(outs.len(), 1);
                port = PortRef::new(next.component, outs[0].0);
            }
            ComponentKind::BeamSplitter { .. } => {
                // A splitter before any mux would make the "first coupler"
                // ill-defined; none of the designs do this.
                return None;
            }
            ComponentKind::Transmitter => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_optics::components::ComponentKind;
    use otis_optics::netlist::PortRef;

    /// Two processors, each with one transmitter and one receiver, connected
    /// through a degree-2 coupler made of an explicit mux + splitter.
    fn two_processor_design() -> MultiOpsDesign {
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "p0 tx");
        let tx1 = n.add(ComponentKind::Transmitter, "p1 tx");
        let mux = n.add(ComponentKind::Multiplexer { inputs: 2 }, "mux");
        let split = n.add(ComponentKind::BeamSplitter { outputs: 2 }, "split");
        let rx0 = n.add(ComponentKind::Receiver, "p0 rx");
        let rx1 = n.add(ComponentKind::Receiver, "p1 rx");
        n.connect(PortRef::new(tx0, 0), PortRef::new(mux, 0));
        n.connect(PortRef::new(tx1, 0), PortRef::new(mux, 1));
        n.connect(PortRef::new(mux, 0), PortRef::new(split, 0));
        n.connect(PortRef::new(split, 0), PortRef::new(rx0, 0));
        n.connect(PortRef::new(split, 1), PortRef::new(rx1, 0));
        let mut receiver_owner = BTreeMap::new();
        receiver_owner.insert(rx0, 0);
        receiver_owner.insert(rx1, 1);
        MultiOpsDesign {
            netlist: n,
            transmitters: vec![vec![tx0], vec![tx1]],
            receivers: vec![vec![rx0], vec![rx1]],
            receiver_owner,
            couplers: vec![(mux, split)],
        }
    }

    #[test]
    fn induced_digraph_of_single_coupler() {
        let d = two_processor_design();
        let g = d.induced_digraph();
        assert_eq!(g.node_count(), 2);
        // Both processors reach both processors through the shared coupler.
        assert_eq!(g.arc_count(), 4);
        for u in 0..2 {
            for v in 0..2 {
                assert!(g.has_arc(u, v));
            }
        }
    }

    #[test]
    fn induced_hypergraph_of_single_coupler() {
        let d = two_processor_design();
        let h = d.induced_hypergraph();
        assert_eq!(h.hyperarc_count(), 1);
        let a = h.hyperarc(0).unwrap();
        assert_eq!(a.tail, vec![0, 1]);
        assert_eq!(a.head, vec![0, 1]);
    }

    #[test]
    fn inventory_and_loss() {
        let d = two_processor_design();
        let inv = d.inventory();
        assert_eq!(inv.transmitter_count(), 2);
        assert_eq!(inv.receiver_count(), 2);
        assert_eq!(inv.multiplexer_count(), 1);
        assert_eq!(inv.splitter_count(), 1);
        assert!(d.worst_case_loss_db() > 0.0);
        assert_eq!(d.processor_count(), 2);
        assert_eq!(d.coupler_count(), 1);
    }

    #[test]
    fn point_to_point_induced_digraph() {
        // Two processors joined by direct fiber in both directions.
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "p0 tx");
        let tx1 = n.add(ComponentKind::Transmitter, "p1 tx");
        let f0 = n.add(ComponentKind::Fiber, "f0");
        let f1 = n.add(ComponentKind::Fiber, "f1");
        let rx0 = n.add(ComponentKind::Receiver, "p0 rx");
        let rx1 = n.add(ComponentKind::Receiver, "p1 rx");
        n.connect(PortRef::new(tx0, 0), PortRef::new(f0, 0));
        n.connect(PortRef::new(f0, 0), PortRef::new(rx1, 0));
        n.connect(PortRef::new(tx1, 0), PortRef::new(f1, 0));
        n.connect(PortRef::new(f1, 0), PortRef::new(rx0, 0));
        let mut receiver_owner = BTreeMap::new();
        receiver_owner.insert(rx0, 0);
        receiver_owner.insert(rx1, 1);
        let d = PointToPointDesign {
            netlist: n,
            transmitters: vec![vec![tx0], vec![tx1]],
            receivers: vec![vec![rx0], vec![rx1]],
            receiver_owner,
        };
        let g = d.induced_digraph();
        assert_eq!(g.sorted_arc_list(), vec![(0, 1), (1, 0)]);
        assert_eq!(d.processor_count(), 2);
        assert!(d.worst_case_loss_db() > 0.0);
        assert_eq!(d.inventory().fiber_count(), 2);
    }

    /// A transmitter wired into a splitter reaches two receivers: not a
    /// valid point-to-point design.
    fn fan_out_design() -> PointToPointDesign {
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "p0 tx");
        let split = n.add(ComponentKind::BeamSplitter { outputs: 2 }, "split");
        let rx0 = n.add(ComponentKind::Receiver, "p0 rx");
        let rx1 = n.add(ComponentKind::Receiver, "p1 rx");
        n.connect(PortRef::new(tx0, 0), PortRef::new(split, 0));
        n.connect(PortRef::new(split, 0), PortRef::new(rx0, 0));
        n.connect(PortRef::new(split, 1), PortRef::new(rx1, 0));
        let mut receiver_owner = BTreeMap::new();
        receiver_owner.insert(rx0, 0);
        receiver_owner.insert(rx1, 1);
        PointToPointDesign {
            netlist: n,
            transmitters: vec![vec![tx0], Vec::new()],
            receivers: vec![vec![rx0], vec![rx1]],
            receiver_owner,
        }
    }

    #[test]
    fn try_induced_digraph_reports_fan_out() {
        let d = fan_out_design();
        let err = d.try_induced_digraph().unwrap_err();
        assert_eq!(
            err,
            InducedGraphError::FanOutMismatch {
                processor: 0,
                transmitter: d.transmitters[0][0],
                receivers_reached: 2,
            }
        );
        assert!(err.to_string().contains("expected exactly 1"));
    }

    #[test]
    #[should_panic(expected = "malformed point-to-point design")]
    fn induced_digraph_wrapper_still_panics() {
        fan_out_design().induced_digraph();
    }

    #[test]
    fn try_induced_digraph_reports_unowned_receiver() {
        let mut d = fan_out_design();
        // Remove the splitter fan-out by rebuilding a 1-to-1 netlist whose
        // receiver is simply not registered.
        let mut n = Netlist::new();
        let tx0 = n.add(ComponentKind::Transmitter, "p0 tx");
        let f = n.add(ComponentKind::Fiber, "f");
        let rx = n.add(ComponentKind::Receiver, "orphan rx");
        n.connect(PortRef::new(tx0, 0), PortRef::new(f, 0));
        n.connect(PortRef::new(f, 0), PortRef::new(rx, 0));
        d.netlist = n;
        d.transmitters = vec![vec![tx0]];
        d.receivers = vec![vec![rx]];
        d.receiver_owner = BTreeMap::new();
        let err = d.try_induced_digraph().unwrap_err();
        assert_eq!(
            err,
            InducedGraphError::UnownedReceiver {
                transmitter: tx0,
                receiver: rx
            }
        );
        assert!(err.to_string().contains("belongs to no processor"));
    }
}
