//! §4.2: the stack-Kautz network on OTIS (Fig. 12).
//!
//! `SK(s, d, k)` has `n = d^(k-1)(d+1)` groups of `s` processors and
//! `n·(d+1)` OPS couplers of degree `s`.  The paper's construction:
//!
//! * **the groups**: `n` transmitter-side `OTIS(s, d+1)` and `n`
//!   receiver-side `OTIS(d+1, s)` blocks connect every group to its `d+1`
//!   multiplexers and `d+1` beam-splitters;
//! * **the optical interconnection network**: one `OTIS(d, n)` realizes the
//!   Kautz interconnections between the "Kautz arc" multiplexers and
//!   beam-splitters (Corollary 1, via `KG(d, k) = II(d, n)`);
//! * **the loops**: one fiber per group closes the loop coupler.
//!
//! The worked example of the paper, `SK(6, 3, 2)`, uses 12 `OTIS(6, 4)`,
//! 12 `OTIS(4, 6)`, 48 optical multiplexers, 48 beam-splitters and one
//! `OTIS(3, 12)`; the tests check this inventory exactly.
//!
//! Groups are numbered with the Imase–Itoh integer labels (as in Fig. 10 and
//! Fig. 12 of the paper); the Kautz word label of group `x` is obtained
//! through the `II(d, n) ≅ KG(d, k)` identification established in
//! `otis-topologies`.

use crate::design::MultiOpsDesign;
use crate::stack_imase_itoh_design::StackImaseItohDesign;
use crate::verify::{VerificationError, VerificationReport};
use otis_graphs::StackGraph;
use otis_optics::HardwareInventory;
use otis_topologies::kautz_node_count;

/// The OTIS-based optical design of `SK(s, d, k)`.
#[derive(Debug, Clone)]
pub struct StackKautzDesign {
    s: usize,
    d: usize,
    k: usize,
    inner: StackImaseItohDesign,
}

impl StackKautzDesign {
    /// Builds the design for `SK(s, d, k)`.
    pub fn new(s: usize, d: usize, k: usize) -> Self {
        let n = kautz_node_count(d, k);
        StackKautzDesign {
            s,
            d,
            k,
            inner: StackImaseItohDesign::new(s, d, n),
        }
    }

    /// Stacking factor `s`.
    pub fn stacking_factor(&self) -> usize {
        self.s
    }

    /// Kautz degree `d` (processors have network degree `d + 1`).
    pub fn kautz_degree(&self) -> usize {
        self.d
    }

    /// Diameter parameter `k`.
    pub fn diameter_parameter(&self) -> usize {
        self.k
    }

    /// Number of groups `d^(k-1)(d+1)`.
    pub fn group_count(&self) -> usize {
        self.inner.group_count()
    }

    /// Total number of processors `s·d^(k-1)(d+1)`.
    pub fn processor_count(&self) -> usize {
        self.inner.processor_count()
    }

    /// Number of OPS couplers `d^(k-1)(d+1)·(d+1)`.
    pub fn coupler_count(&self) -> usize {
        self.inner.design().coupler_count()
    }

    /// The general stack-Imase–Itoh machinery this design instantiates.
    pub fn stack_imase_itoh_design(&self) -> &StackImaseItohDesign {
        &self.inner
    }

    /// The underlying multi-OPS design (netlist + maps).
    pub fn design(&self) -> &MultiOpsDesign {
        self.inner.design()
    }

    /// The target stack-graph (the quotient carries Imase–Itoh integer group
    /// labels; it is isomorphic to `ς(s, KG⁺(d, k))`).
    pub fn target(&self) -> &StackGraph {
        self.inner.target()
    }

    /// Verifies, by signal tracing, that the design realizes the stack-Kautz
    /// network hyperarc for hyperarc.
    pub fn verify(&self) -> Result<VerificationReport, VerificationError> {
        self.inner.verify()
    }

    /// The parts list.
    pub fn inventory(&self) -> HardwareInventory {
        self.inner.inventory()
    }

    /// The inventory the paper predicts for `SK(s, d, k)`:
    /// `n` × `OTIS(s, d+1)`, `n` × `OTIS(d+1, s)`, `n(d+1)` multiplexers and
    /// beam-splitters, one `OTIS(d, n)`, `n` loop fibers, and `s·n·(d+1)`
    /// transmitters and receivers, with `n = d^(k-1)(d+1)`.
    pub fn expected_inventory(&self) -> HardwareInventory {
        let n = self.group_count();
        let (s, d) = (self.s, self.d);
        let mut inv = HardwareInventory::new();
        for _ in 0..n {
            inv.add_otis(s, d + 1);
            inv.add_otis(d + 1, s);
            for _ in 0..(d + 1) {
                inv.add_multiplexer(s);
                inv.add_splitter(s);
            }
        }
        inv.add_otis(d, n);
        inv.add_fibers(n);
        inv.add_transmitters(s * n * (d + 1));
        inv.add_receivers(s * n * (d + 1));
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_sk_6_3_2_is_realized() {
        let design = StackKautzDesign::new(6, 3, 2);
        assert_eq!(design.processor_count(), 72);
        assert_eq!(design.group_count(), 12);
        assert_eq!(design.coupler_count(), 48);
        let report = design.verify().expect("SK(6,3,2) OTIS design must verify");
        assert_eq!(report.processors, 72);
        assert_eq!(report.links, 48);
    }

    #[test]
    fn fig12_hardware_inventory_matches_the_paper() {
        // "12 OTIS(6,4), 12 OTIS(4,6), 48 optical multiplexers, 48
        //  beam-splitters and one OTIS(3,12)."
        let design = StackKautzDesign::new(6, 3, 2);
        let inv = design.inventory();
        assert_eq!(inv.otis_units_of(6, 4), 12);
        assert_eq!(inv.otis_units_of(4, 6), 12);
        assert_eq!(inv.otis_units_of(3, 12), 1);
        assert_eq!(inv.otis_units(), 25);
        assert_eq!(inv.multiplexer_count(), 48);
        assert_eq!(inv.splitter_count(), 48);
        assert_eq!(inv.fiber_count(), 12);
        assert_eq!(inv.transmitter_count(), 72 * 4);
        assert_eq!(inv.receiver_count(), 72 * 4);
        // And it matches the closed-form prediction.
        assert_eq!(inv, design.expected_inventory());
    }

    #[test]
    fn verification_sweep() {
        for (s, d, k) in [
            (1, 2, 2),
            (2, 2, 2),
            (3, 2, 2),
            (2, 3, 2),
            (2, 2, 3),
            (4, 2, 2),
        ] {
            StackKautzDesign::new(s, d, k)
                .verify()
                .unwrap_or_else(|e| panic!("SK({s},{d},{k}) design failed: {e}"));
        }
    }

    #[test]
    fn expected_inventory_matches_actual_for_other_sizes() {
        for (s, d, k) in [(2, 2, 2), (3, 2, 3), (2, 3, 2)] {
            let design = StackKautzDesign::new(s, d, k);
            assert_eq!(
                design.inventory(),
                design.expected_inventory(),
                "SK({s},{d},{k})"
            );
        }
    }

    #[test]
    fn netlist_is_fully_wired() {
        let design = StackKautzDesign::new(2, 2, 2);
        assert!(design.design().netlist.is_fully_wired());
    }

    #[test]
    fn multi_hop_loss_is_bounded_by_one_hop_budget() {
        // A single hop: tx -> OTIS(s,d+1) -> mux -> OTIS(d,n) or fiber ->
        // splitter -> OTIS(d+1,s) -> rx.  The worst case path goes through
        // the central OTIS.
        let design = StackKautzDesign::new(6, 3, 2);
        let loss = design.design().worst_case_loss_db();
        let expected = 3.0 * otis_optics::power::OTIS_LOSS_DB
            + otis_optics::power::MULTIPLEXER_LOSS_DB
            + otis_optics::power::splitting_loss_db(6)
            + otis_optics::power::SPLITTER_EXCESS_LOSS_DB;
        assert!((loss - expected).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let design = StackKautzDesign::new(6, 3, 2);
        assert_eq!(design.stacking_factor(), 6);
        assert_eq!(design.kautz_degree(), 3);
        assert_eq!(design.diameter_parameter(), 2);
        assert_eq!(design.target().node_count(), 72);
        assert_eq!(design.stack_imase_itoh_design().group_count(), 12);
    }
}
