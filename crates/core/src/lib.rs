//! # otis-core
//!
//! The paper's contribution: **optical designs of multi-OPS lightwave
//! networks built from the OTIS architecture**, together with machinery that
//! *verifies*, by exact signal tracing, that every design realizes its target
//! topology.
//!
//! The designs implemented here follow §3 and §4 of the paper:
//!
//! * [`group`] — the group-of-processors building block (§3.1, Fig. 8/9):
//!   one `OTIS(t, g)` plus `g` optical multiplexers connects the `t`
//!   processors of a group to the inputs of its `g` OPS couplers, and one
//!   `OTIS(g, t)` plus `g` beam-splitters connects the couplers' outputs back
//!   to the group;
//! * [`imase_itoh_design`] — Proposition 1 (Fig. 10): the point-to-point
//!   interconnections of the Imase–Itoh graph `II(d, n)` are realized exactly
//!   by a single `OTIS(d, n)`;
//! * [`kautz_design`] — Corollary 1: the Kautz graph `KG(d, k)` is
//!   `II(d, d^(k-1)(d+1))`, hence realized by `OTIS(d, d^(k-1)(d+1))`;
//! * [`pops_design`] — §4.1 (Fig. 11): the single-hop `POPS(t, g)` network
//!   built from `g` transmitter-side `OTIS(t, g)`, `g` receiver-side
//!   `OTIS(g, t)`, `g²` multiplexers, `g²` beam-splitters and one central
//!   `OTIS(g, g)`;
//! * [`stack_kautz_design`] — §4.2 (Fig. 12): the multi-hop stack-Kautz
//!   network `SK(s, d, k)` built from `d^(k-1)(d+1)` group blocks
//!   (`OTIS(s, d+1)` / `OTIS(d+1, s)` plus multiplexers and splitters), one
//!   central `OTIS(d, d^(k-1)(d+1))` and one fiber loop per group;
//! * [`stack_imase_itoh_design`] — the "trivial extension" mentioned at the
//!   end of §2.7: the same construction over `II(d, n)` for arbitrary `n`;
//! * [`design`] and [`verify`] — the common representation of a design
//!   (netlist + processor↔transceiver maps) and the checks that its traced
//!   connectivity equals the target (stack-)graph arc for arc.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod design;
pub mod group;
pub mod imase_itoh_design;
pub mod kautz_design;
pub mod pops_design;
pub mod stack_imase_itoh_design;
pub mod stack_kautz_design;
pub mod verify;

pub use design::{InducedGraphError, MultiOpsDesign, PointToPointDesign};
pub use imase_itoh_design::ImaseItohDesign;
pub use kautz_design::KautzDesign;
pub use pops_design::PopsDesign;
pub use stack_imase_itoh_design::StackImaseItohDesign;
pub use stack_kautz_design::StackKautzDesign;
pub use verify::{VerificationError, VerificationReport};
