//! The stack-Imase–Itoh network on OTIS (the general multi-hop design).
//!
//! This module contains the full construction machinery of §4.2, written for
//! the general quotient `II⁺(d, n)` (the paper notes the stack-Kautz design
//! "can be trivially extended to the stack-Imase–Itoh network"; conversely,
//! since `KG(d, k) = II(d, d^(k-1)(d+1))`, the stack-Kautz design of
//! [`crate::stack_kautz_design`] is this construction instantiated at a Kautz
//! size).  The ingredients, per the paper:
//!
//! * **the groups**: for every group `u` (a node of the quotient), one
//!   transmitter-side `OTIS(s, δ_u)` + `δ_u` multiplexers and one
//!   receiver-side `OTIS(δ_u, s)` + `δ_u` beam-splitters, where
//!   `δ_u = d + 1` in the usual case and `d` when `II(d, n)` already has a
//!   loop at `u` (so that the quotient degree of `II⁺` is respected);
//! * **the optical interconnection network**: one central `OTIS(d, n)`
//!   realizing `II(d, n)` (Proposition 1) between the `d` "graph arc"
//!   multiplexers of every group and the `d` "graph arc" beam-splitters of
//!   the destination groups;
//! * **the loops**: the loop coupler of each group is closed with a fiber
//!   from its loop multiplexer to its loop beam-splitter (the paper: "the
//!   loops are not taken into account in the optical interconnection network
//!   and we consider that they are connected using an appropriate technique
//!   (e.g., optical fiber)").

use crate::design::MultiOpsDesign;
use crate::group::{add_receiver_side_group, add_transmitter_side_group};
use crate::verify::{verify_multi_ops, VerificationError, VerificationReport};
use otis_graphs::StackGraph;
use otis_optics::components::ComponentKind;
use otis_optics::netlist::{Netlist, PortRef};
use otis_optics::{HardwareInventory, Otis};
use otis_topologies::imase_itoh;
use std::collections::BTreeMap;

/// The OTIS-based optical design of the stack-Imase–Itoh network
/// `SII(s, d, n) = ς(s, II⁺(d, n))`.
#[derive(Debug, Clone)]
pub struct StackImaseItohDesign {
    s: usize,
    d: usize,
    n: usize,
    target: StackGraph,
    design: MultiOpsDesign,
}

impl StackImaseItohDesign {
    /// Builds the design for `SII(s, d, n)`.
    pub fn new(s: usize, d: usize, n: usize) -> Self {
        assert!(s >= 1, "stacking factor s must be >= 1");
        assert!(
            d >= 1 && n >= 1,
            "Imase-Itoh parameters must satisfy d >= 1, n >= 1"
        );

        let ii = imase_itoh(d, n);
        let quotient = ii.with_loops();
        let target = StackGraph::new(s, quotient.clone()).expect("s >= 1 was checked");
        let has_loop: Vec<bool> = (0..n).map(|u| ii.has_arc(u, u)).collect();

        let mut netlist = Netlist::new();

        // Per-group building blocks.  Group u needs δ_u couplers where δ_u is
        // its out-degree in II⁺(d, n).
        let degrees: Vec<usize> = (0..n)
            .map(|u| if has_loop[u] { d } else { d + 1 })
            .collect();
        let tx_groups: Vec<_> = (0..n)
            .map(|u| add_transmitter_side_group(&mut netlist, s, degrees[u], &format!("group {u}")))
            .collect();
        let rx_groups: Vec<_> = (0..n)
            .map(|u| add_receiver_side_group(&mut netlist, s, degrees[u], &format!("group {u}")))
            .collect();

        // The central OTIS(d, n) realizing II(d, n) between multiplexers and
        // beam-splitters (Proposition 1, applied at the group level).
        let core = netlist.add(
            ComponentKind::Otis {
                groups: d,
                group_size: n,
            },
            format!("central OTIS({d},{n})"),
        );
        let core_otis = Otis::new(d, n);

        // Graph-arc multiplexer a (0-based; the paper's α = a + 1) of group u
        // occupies core input flat d·u + a; core output (p, q) feeds
        // beam-splitter q of group p.
        for (u, tx_group) in tx_groups.iter().enumerate() {
            for a in 0..d {
                let mux = tx_group.multiplexers[a];
                let flat = d * u + a;
                netlist.connect(PortRef::new(mux, 0), PortRef::new(core, flat));
            }
        }
        for (p, rx_group) in rx_groups.iter().enumerate() {
            for q in 0..d {
                let split = rx_group.splitters[q];
                let flat = core_otis.rx_index(p, q);
                netlist.connect(PortRef::new(core, flat), PortRef::new(split, 0));
            }
        }

        // Loop couplers: fiber from the loop multiplexer to the loop
        // beam-splitter of the same group (only for groups whose quotient
        // loop is not already one of the II arcs).
        let mut loop_fibers: Vec<Option<otis_optics::ComponentId>> = vec![None; n];
        for u in 0..n {
            if !has_loop[u] {
                let fiber = netlist.add(ComponentKind::Fiber, format!("group {u} loop fiber"));
                let mux = tx_groups[u].multiplexers[d];
                let split = rx_groups[u].splitters[d];
                netlist.connect(PortRef::new(mux, 0), PortRef::new(fiber, 0));
                netlist.connect(PortRef::new(fiber, 0), PortRef::new(split, 0));
                loop_fibers[u] = Some(fiber);
            }
        }

        // Processor maps: processor (group u, index y) has flat id u·s + y.
        let mut transmitters = Vec::with_capacity(s * n);
        let mut receivers = Vec::with_capacity(s * n);
        let mut receiver_owner = BTreeMap::new();
        for u in 0..n {
            for y in 0..s {
                let p = u * s + y;
                transmitters.push(tx_groups[u].transmitters[y].clone());
                receivers.push(rx_groups[u].receivers[y].clone());
                for &rx in &rx_groups[u].receivers[y] {
                    receiver_owner.insert(rx, p);
                }
            }
        }

        // Couplers in the arc order of the quotient II⁺(d, n): first every
        // II arc (u, α) in (u, α) order, then the added loops in node order —
        // exactly the order `Digraph::with_loops` produces.
        let mut couplers = Vec::with_capacity(quotient.arc_count());
        for (u, tx_group) in tx_groups.iter().enumerate() {
            for a in 0..d {
                let mux = tx_group.multiplexers[a];
                let flat = d * u + a;
                let i = flat / n;
                let j = flat % n;
                let (p, q) = core_otis.map_pair(i, j);
                let splitter = rx_groups[p].splitters[q];
                couplers.push((mux, splitter));
            }
        }
        for u in 0..n {
            if !has_loop[u] {
                couplers.push((tx_groups[u].multiplexers[d], rx_groups[u].splitters[d]));
            }
        }

        StackImaseItohDesign {
            s,
            d,
            n,
            target,
            design: MultiOpsDesign {
                netlist,
                transmitters,
                receivers,
                receiver_owner,
                couplers,
            },
        }
    }

    /// Stacking factor `s` (group size, coupler degree).
    pub fn stacking_factor(&self) -> usize {
        self.s
    }

    /// Imase–Itoh degree `d`.
    pub fn ii_degree(&self) -> usize {
        self.d
    }

    /// Number of groups `n`.
    pub fn group_count(&self) -> usize {
        self.n
    }

    /// Total number of processors `s·n`.
    pub fn processor_count(&self) -> usize {
        self.s * self.n
    }

    /// The target stack-graph `ς(s, II⁺(d, n))`.
    pub fn target(&self) -> &StackGraph {
        &self.target
    }

    /// The underlying multi-OPS design (netlist + maps).
    pub fn design(&self) -> &MultiOpsDesign {
        &self.design
    }

    /// Verifies, by signal tracing, that the design realizes
    /// `ς(s, II⁺(d, n))` hyperarc for hyperarc.
    pub fn verify(&self) -> Result<VerificationReport, VerificationError> {
        verify_multi_ops(&self.design, &self.target)
    }

    /// The parts list.
    pub fn inventory(&self) -> HardwareInventory {
        self.design.inventory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sii_verifies() {
        let design = StackImaseItohDesign::new(2, 2, 6);
        let report = design.verify().expect("SII(2,2,6) must verify");
        assert_eq!(report.processors, 12);
    }

    #[test]
    fn verification_sweep_including_loopy_quotients() {
        // II(3,10) and II(2,3) contain loops; the design must adapt the
        // per-group coupler count and still realize ς(s, II⁺).
        for (s, d, n) in [
            (2, 2, 5),
            (2, 3, 10),
            (3, 2, 3),
            (2, 2, 9),
            (1, 2, 6),
            (2, 3, 7),
        ] {
            StackImaseItohDesign::new(s, d, n)
                .verify()
                .unwrap_or_else(|e| panic!("SII({s},{d},{n}) design failed: {e}"));
        }
    }

    #[test]
    fn processor_and_group_counts() {
        let design = StackImaseItohDesign::new(3, 2, 7);
        assert_eq!(design.stacking_factor(), 3);
        assert_eq!(design.ii_degree(), 2);
        assert_eq!(design.group_count(), 7);
        assert_eq!(design.processor_count(), 21);
        assert_eq!(design.target().node_count(), 21);
    }

    #[test]
    fn netlist_is_fully_wired() {
        let design = StackImaseItohDesign::new(2, 2, 6);
        assert!(design.design().netlist.is_fully_wired());
    }

    #[test]
    fn inventory_counts_core_and_groups() {
        let design = StackImaseItohDesign::new(2, 2, 6);
        let inv = design.inventory();
        // II(2,6) has no loops, so every group has degree 3 blocks.
        assert_eq!(inv.otis_units_of(2, 6), 1);
        assert_eq!(inv.otis_units_of(2, 3), 6); // tx side OTIS(s=2, g=3)
        assert_eq!(inv.otis_units_of(3, 2), 6); // rx side OTIS(g=3, s=2)
        assert_eq!(inv.multiplexer_count(), 18);
        assert_eq!(inv.splitter_count(), 18);
        assert_eq!(inv.fiber_count(), 6);
        assert_eq!(inv.transmitter_count(), 2 * 6 * 3);
        assert_eq!(inv.receiver_count(), 2 * 6 * 3);
    }

    #[test]
    fn loopy_quotient_uses_fewer_fibers() {
        // II(2,3): every node u has neighbours (-2u-1, -2u-2) mod 3; node 1:
        // (-3, -4) mod 3 = (0, 2); node 0: (2, 1); node 2: (-5, -6) mod 3 = (1, 0).
        // No loops here — pick II(3,4) instead: node u, v = (-3u-α) mod 4.
        // u=0: (3,2,1); u=1: (-4,-5,-6)=(0,3,2); u=2: (-7,-8,-9)=(1,0,3); u=3: (-10,..)=(2,1,0).
        // Still no loops. II(2,4): u=0:(3,2) u=1:(-3,-4)=(1,0) -> loop at 1!
        let design = StackImaseItohDesign::new(2, 2, 4);
        let inv = design.inventory();
        // Node 1 (and by symmetry exactly the nodes with 2u+α ≡ 0 mod 4... )
        // carries an II loop, so it needs no fiber loop.
        assert!(inv.fiber_count() < 4);
        design.verify().expect("loopy SII(2,2,4) must still verify");
    }
}
