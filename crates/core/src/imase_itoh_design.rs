//! Proposition 1: the Imase–Itoh graph `II(d, n)` on a single `OTIS(d, n)`.
//!
//! The design (Fig. 10 of the paper) uses:
//!
//! * one `OTIS(d, n)` — `d` transmitter groups of size `n`, `n` receiver
//!   groups of size `d`;
//! * `d` transmitters and `d` receivers per graph node.
//!
//! Node `u` is associated with the OTIS inputs of flat index
//! `d·u + (α − 1)` for `α = 1, …, d` (the paper's
//! `e_{du+α−1} = (⌊(du+α−1)/n⌋, du+α−1 − ⌊(du+α−1)/n⌋·n)`), and with the OTIS
//! outputs `(u, q)` for `q = 0, …, d−1`.  With that assignment, the
//! transmitter `α` of node `u` is imaged by the OTIS transpose onto a
//! receiver of node `v ≡ (−d·u − α) mod n` — exactly the Imase–Itoh
//! adjacency.  [`ImaseItohDesign::verify`] re-derives the adjacency from the
//! netlist by signal tracing and checks it against
//! [`otis_topologies::imase_itoh`] arc for arc, in α order.

use crate::design::PointToPointDesign;
use crate::verify::{verify_point_to_point, VerificationError, VerificationReport};
use otis_optics::components::ComponentKind;
use otis_optics::netlist::{Netlist, PortRef};
use otis_optics::{HardwareInventory, Otis};
use otis_topologies::imase_itoh;
use std::collections::BTreeMap;

/// The OTIS-based optical design of `II(d, n)`.
#[derive(Debug, Clone)]
pub struct ImaseItohDesign {
    d: usize,
    n: usize,
    design: PointToPointDesign,
    otis: otis_optics::ComponentId,
}

impl ImaseItohDesign {
    /// Builds the design for `II(d, n)`.
    pub fn new(d: usize, n: usize) -> Self {
        assert!(
            d >= 1 && n >= 1,
            "II parameters must satisfy d >= 1, n >= 1"
        );
        let mut netlist = Netlist::new();
        let otis = netlist.add(
            ComponentKind::Otis {
                groups: d,
                group_size: n,
            },
            format!("central OTIS({d},{n})"),
        );

        // d transmitters per node; transmitter a (0-based) of node u sits at
        // OTIS input flat index d*u + a.
        let mut transmitters: Vec<Vec<otis_optics::ComponentId>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut row = Vec::with_capacity(d);
            for a in 0..d {
                let tx = netlist.add(
                    ComponentKind::Transmitter,
                    format!("node {u} transmitter alpha={}", a + 1),
                );
                let flat = d * u + a;
                netlist.connect(PortRef::new(tx, 0), PortRef::new(otis, flat));
                row.push(tx);
            }
            transmitters.push(row);
        }

        // d receivers per node; receiver q of node v sits at OTIS output
        // (v, q), i.e. flat index v*d + q.
        let mut receivers: Vec<Vec<otis_optics::ComponentId>> = Vec::with_capacity(n);
        let mut receiver_owner = BTreeMap::new();
        for v in 0..n {
            let mut row = Vec::with_capacity(d);
            for q in 0..d {
                let rx = netlist.add(ComponentKind::Receiver, format!("node {v} receiver {q}"));
                let flat = v * d + q;
                netlist.connect(PortRef::new(otis, flat), PortRef::new(rx, 0));
                receiver_owner.insert(rx, v);
                row.push(rx);
            }
            receivers.push(row);
        }

        ImaseItohDesign {
            d,
            n,
            design: PointToPointDesign {
                netlist,
                transmitters,
                receivers,
                receiver_owner,
            },
            otis,
        }
    }

    /// Degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The underlying point-to-point design (netlist + maps).
    pub fn design(&self) -> &PointToPointDesign {
        &self.design
    }

    /// The component id of the central OTIS.
    pub fn otis_component(&self) -> otis_optics::ComponentId {
        self.otis
    }

    /// The OTIS geometry used by the design.
    pub fn otis(&self) -> Otis {
        Otis::new(self.d, self.n)
    }

    /// The target digraph `II(d, n)`.
    pub fn target(&self) -> otis_graphs::Digraph {
        imase_itoh(self.d, self.n)
    }

    /// Verifies, by signal tracing, that the design realizes `II(d, n)`:
    /// every transmitter α of every node `u` reaches exactly one receiver and
    /// that receiver belongs to node `(−d·u − α) mod n`.
    pub fn verify(&self) -> Result<VerificationReport, VerificationError> {
        verify_point_to_point(&self.design, &self.target())
    }

    /// The parts list: one `OTIS(d, n)`, `d·n` transmitters, `d·n` receivers.
    pub fn inventory(&self) -> HardwareInventory {
        self.design.inventory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ii_3_12_is_realized_exactly() {
        let design = ImaseItohDesign::new(3, 12);
        let report = design
            .verify()
            .expect("Proposition 1 must hold for II(3,12)");
        assert_eq!(report.processors, 12);
        assert_eq!(report.links, 36);
        // 1 OTIS + 36 tx + 36 rx.
        assert_eq!(report.components, 73);
    }

    #[test]
    fn proposition_1_holds_over_a_parameter_sweep() {
        for (d, n) in [
            (1, 4),
            (2, 5),
            (2, 6),
            (2, 12),
            (3, 7),
            (3, 12),
            (4, 9),
            (4, 30),
            (5, 11),
        ] {
            let design = ImaseItohDesign::new(d, n);
            design
                .verify()
                .unwrap_or_else(|e| panic!("II({d},{n}) OTIS design failed: {e}"));
        }
    }

    #[test]
    fn inventory_matches_proposition() {
        let design = ImaseItohDesign::new(3, 12);
        let inv = design.inventory();
        assert_eq!(inv.otis_units(), 1);
        assert_eq!(inv.otis_units_of(3, 12), 1);
        assert_eq!(inv.transmitter_count(), 36);
        assert_eq!(inv.receiver_count(), 36);
        assert_eq!(inv.coupler_count(), 0);
        assert_eq!(inv.lens_count(), 72);
    }

    #[test]
    fn netlist_is_fully_wired() {
        let design = ImaseItohDesign::new(2, 7);
        assert!(design.design().netlist.is_fully_wired());
    }

    #[test]
    fn loss_is_single_otis_traversal() {
        let design = ImaseItohDesign::new(3, 12);
        let loss = design.design().worst_case_loss_db();
        assert!((loss - otis_optics::power::OTIS_LOSS_DB).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let design = ImaseItohDesign::new(4, 10);
        assert_eq!(design.degree(), 4);
        assert_eq!(design.node_count(), 10);
        assert_eq!(design.otis().groups(), 4);
        assert_eq!(design.otis().group_size(), 10);
        assert_eq!(design.target().arc_count(), 40);
    }
}
