//! # otis-lightwave
//!
//! Umbrella crate for the reproduction of *"OTIS-Based Multi-Hop Multi-OPS
//! Lightwave Networks"* (Coudert, Ferreira, Muñoz, 1999).  It re-exports the
//! workspace crates under short module names so examples and downstream users
//! can depend on a single crate:
//!
//! * [`net`] — **the recommended entry point**: the spec-driven [`Network`]
//!   facade, one uniform API from a spec string (`"SK(6,3,2)"`,
//!   `"POPS(9,8)"`, `"II(4,12)"`, `"KG(3,4)"`, `"DB(2,8)"`, …) to topology,
//!   optical design, verification, routing and simulation;
//! * [`graphs`] — digraphs, hypergraphs, stack-graphs and their algorithms;
//! * [`topologies`] — Kautz, Imase–Itoh, de Bruijn, POPS, stack-Kautz, …;
//! * [`optics`] — OTIS, OPS couplers, multiplexers, beam-splitters, netlists,
//!   power and cost models;
//! * [`designs`] — the paper's OTIS-based optical designs and their
//!   verification (the `otis-core` crate);
//! * [`routing`] — label, arithmetic, fault-tolerant, stack and hot-potato
//!   routing;
//! * [`sim`] — the slotted multi-OPS network simulator.
//!
//! ## Quickstart
//!
//! Any network of the paper is one spec string away; the facade exposes
//! every layer of the reproduction through a single handle:
//!
//! ```
//! use otis_lightwave::net::{Network, SimOptions};
//!
//! // The paper's worked example SK(6,3,2), verified optically end-to-end
//! // (the OTIS design is built and traced signal by signal).
//! let sk = Network::from_spec("SK(6,3,2)").unwrap();
//! let report = sk.verify().expect("the design realizes the stack-Kautz network");
//! assert_eq!(report.processors, 72);
//! assert_eq!(report.links, 48);
//!
//! // Shortest-path routing is inherited from the Kautz quotient ...
//! let route = sk.router().route(0, 71).unwrap();
//! assert!(route.hop_count() <= 2);
//!
//! // ... and the same handle drives the slotted simulator.
//! let metrics = sk.simulate_uniform(0.2, &SimOptions::new(300, 42));
//! assert!(metrics.delivered > 0);
//!
//! // Comparison scenarios are data: a list of specs plus a list of loads.
//! let rows = otis_lightwave::net::compare_spec_strs(
//!     &["SK(2,2,2)", "POPS(2,6)", "DB(2,4)"],
//!     &[0.1, 0.5],
//!     200,
//!     7,
//! )
//! .unwrap();
//! assert_eq!(rows.len(), 6);
//!
//! // Workloads are data too: traffic patterns parse from spec strings and
//! // bind to a network with typed topology checks (DB(2,4) has 2^4
//! // processors, so bit-reversal traffic is well-defined on it).
//! use otis_lightwave::net::TrafficSpec;
//! let bitrev: TrafficSpec = "bitrev(0.5)".parse().unwrap();
//! let db = Network::from_spec("DB(2,4)").unwrap();
//! let metrics = db.simulate_workload(&bitrev, &SimOptions::new(200, 7)).unwrap();
//! assert!(metrics.delivered > 0);
//! ```
//!
//! The per-layer crates remain available for work below the facade (custom
//! netlists, new topology families, new routers).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use otis_core as designs;
pub use otis_graphs as graphs;
pub use otis_net as net;
pub use otis_optics as optics;
pub use otis_routing as routing;
pub use otis_sim as sim;
pub use otis_topologies as topologies;

pub use otis_net::{Network, NetworkSpec};
