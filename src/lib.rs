//! # otis-lightwave
//!
//! Umbrella crate for the reproduction of *"OTIS-Based Multi-Hop Multi-OPS
//! Lightwave Networks"* (Coudert, Ferreira, Muñoz, 1999).  It re-exports the
//! workspace crates under short module names so examples and downstream users
//! can depend on a single crate:
//!
//! * [`graphs`] — digraphs, hypergraphs, stack-graphs and their algorithms;
//! * [`topologies`] — Kautz, Imase–Itoh, de Bruijn, POPS, stack-Kautz, …;
//! * [`optics`] — OTIS, OPS couplers, multiplexers, beam-splitters, netlists,
//!   power and cost models;
//! * [`designs`] — the paper's OTIS-based optical designs and their
//!   verification (the `otis-core` crate);
//! * [`routing`] — label, arithmetic, fault-tolerant, stack and hot-potato
//!   routing;
//! * [`sim`] — the slotted multi-OPS network simulator.
//!
//! ## Quickstart
//!
//! ```
//! use otis_lightwave::designs::StackKautzDesign;
//!
//! // Build the paper's worked example SK(6, 3, 2) and verify it optically.
//! let design = StackKautzDesign::new(6, 3, 2);
//! let report = design.verify().expect("the design realizes the stack-Kautz network");
//! assert_eq!(report.processors, 72);
//! assert_eq!(report.links, 48);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use otis_core as designs;
pub use otis_graphs as graphs;
pub use otis_optics as optics;
pub use otis_routing as routing;
pub use otis_sim as sim;
pub use otis_topologies as topologies;
