//! Offline, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate implements
//! just the surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a plain wall-clock mean over an adaptively chosen iteration
//! count printed to stdout; there is no statistical analysis, HTML report or
//! baseline comparison.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level driver handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), &mut f);
    }

    /// No-op hook kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stub sizes runs adaptively).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the identifier from a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Measures one closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, choosing an iteration count adaptively (until the run takes
    /// at least ~20 ms or 1000 iterations, whichever comes first).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warm-up call.
        black_box(f());
        let mut iterations: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iterations {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iterations >= 1000 {
                self.iterations = iterations;
                self.elapsed = elapsed;
                return;
            }
            iterations = (iterations * 4).min(1000);
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {label}: no measurement");
        return;
    }
    let nanos = bencher.elapsed.as_nanos() / u128::from(bencher.iterations);
    println!("  {label}: {nanos} ns/iter ({} iters)", bencher.iterations);
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .bench_function("one", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("two", "p"), &3usize, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
