//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *exact* surface it consumes — [`Rng::gen_range`]
//! over `usize` ranges, [`Rng::gen_bool`], and a seedable [`rngs::StdRng`] —
//! implemented over the xoshiro256++ generator (Blackman & Vigna) seeded via
//! SplitMix64.  Everything is deterministic given a seed, which is all the
//! simulators rely on; no cryptographic or statistical parity with the real
//! `rand::rngs::StdRng` stream is claimed.

#![deny(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `usize` range.  Panics on an empty
    /// range, matching the real crate.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping is fine for simulation use;
        // the bias is < span / 2^64.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edge_cases_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn works_through_mut_references() {
        fn sample<R: Rng>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample(&mut rng);
    }
}
