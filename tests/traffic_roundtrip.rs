//! Workload-axis acceptance tests, mirroring `tests/spec_roundtrip.rs` for
//! the traffic side of the redesign: every supported workload spec parses,
//! round-trips through `Display`, validates its value ranges at parse time,
//! enforces its topology preconditions at bind time, and drives the scenario
//! grid deterministically at any thread count.

use otis_lightwave::net::{
    parse_scenario_config, run_grid, Network, NetworkError, ScenarioGrid, SimOptions, TrafficSpec,
};

/// A Display ↔ FromStr sweep across every pattern and a spread of loads,
/// offsets, nodes and fractions.
#[test]
fn traffic_spec_roundtrip_sweep() {
    let loads = [0.0, 0.05, 0.2, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut specs: Vec<TrafficSpec> = Vec::new();
    for &load in &loads {
        specs.push(TrafficSpec::Uniform { load });
        specs.push(TrafficSpec::Transpose { load });
        specs.push(TrafficSpec::BitReversal { load });
        for offset in [0, 1, 7, 100] {
            specs.push(TrafficSpec::Permutation { load, offset });
        }
        for hot_node in [0, 5] {
            for hot_fraction in [0.0, 0.2, 1.0] {
                specs.push(TrafficSpec::Hotspot {
                    load,
                    hot_node,
                    hot_fraction,
                });
            }
        }
    }
    for spec in specs {
        let rendered = spec.to_string();
        let parsed: TrafficSpec = rendered
            .parse()
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        assert_eq!(parsed, spec, "{rendered} must round-trip");
        assert_eq!(parsed.to_string(), rendered, "{rendered} canonical form");
        assert!(spec.validate().is_ok(), "{rendered} is a valid spec");
    }
}

/// The same property sweep over the demand-process variants (PR 9):
/// Poisson, on/off, elephants-and-mice mix and trace replay all round-trip
/// through Display with their canonical spelling.
#[test]
fn demand_spec_roundtrip_sweep() {
    let rates = [0.0, 0.05, 0.25, 0.5, 1.0, 2.5];
    let mut specs: Vec<TrafficSpec> = Vec::new();
    for &rate in &rates {
        specs.push(TrafficSpec::Poisson { rate, dst: None });
        for dst in [0, 3, 71] {
            specs.push(TrafficSpec::Poisson {
                rate,
                dst: Some(dst),
            });
        }
        for (burst_len, idle_len) in [(1, 0), (8, 24), (16, 48), (100, 1)] {
            specs.push(TrafficSpec::OnOff {
                rate,
                burst_len,
                idle_len,
            });
        }
        for fraction in [0.0, 0.1, 0.5, 1.0] {
            specs.push(TrafficSpec::Mix {
                fraction,
                elephant_rate: rate,
                mice_rate: rate / 10.0,
            });
        }
    }
    for path in ["demand.trc", "examples/demand.trc", "a b/c.trc"] {
        specs.push(TrafficSpec::Trace {
            path: path.to_string(),
        });
    }
    for spec in specs {
        let rendered = spec.to_string();
        let parsed: TrafficSpec = rendered
            .parse()
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        assert_eq!(parsed, spec, "{rendered} must round-trip");
        assert_eq!(parsed.to_string(), rendered, "{rendered} canonical form");
        assert!(spec.validate().is_ok(), "{rendered} is a valid spec");
        // Every stochastic variant has a finite expected load; only the
        // trace defers its rate to replay time.
        assert_eq!(
            spec.offered_load().is_nan(),
            spec.is_trace(),
            "{rendered} offered load"
        );
    }
}

/// The canonical spellings of the issue parse to the expected variants.
#[test]
fn canonical_spellings_parse() {
    for (text, expected) in [
        ("uniform(0.3)", TrafficSpec::Uniform { load: 0.3 }),
        (
            "perm(0.5,7)",
            TrafficSpec::Permutation {
                load: 0.5,
                offset: 7,
            },
        ),
        (
            "hotspot(0.4,0,0.2)",
            TrafficSpec::Hotspot {
                load: 0.4,
                hot_node: 0,
                hot_fraction: 0.2,
            },
        ),
        ("transpose(0.5)", TrafficSpec::Transpose { load: 0.5 }),
        ("bitrev(0.5)", TrafficSpec::BitReversal { load: 0.5 }),
    ] {
        assert_eq!(text.parse::<TrafficSpec>().unwrap(), expected, "{text}");
        assert_eq!(expected.to_string(), text, "{text}");
    }
}

/// Value errors are caught at parse time, topology errors at bind time.
#[test]
fn invalid_workloads_are_typed_errors() {
    for bad in [
        "uniform(NaN)",
        "uniform(-0.2)",
        "uniform(1.01)",
        "hotspot(0.3,0,1.5)",
        "hotspot(0.3,0,NaN)",
        "gravity(0.5)",
        "perm(0.5)",
        "uniform",
    ] {
        assert!(bad.parse::<TrafficSpec>().is_err(), "{bad} must not parse");
    }
    // Topology-aware refusals through the facade: SK(6,3,2) has 72
    // processors — neither a square nor a power of two.
    let sk = Network::from_spec("SK(6,3,2)").unwrap();
    let options = SimOptions::new(50, 1);
    for unbindable in ["transpose(0.5)", "bitrev(0.5)", "hotspot(0.4,72,0.2)"] {
        let spec: TrafficSpec = unbindable.parse().unwrap();
        let err = sk.simulate_workload(&spec, &options).unwrap_err();
        assert!(
            matches!(err, NetworkError::Traffic(_)),
            "{unbindable} on SK(6,3,2): {err}"
        );
    }
    // The same workloads run where the preconditions hold.
    let k9 = Network::from_spec("K(9)").unwrap();
    let transpose: TrafficSpec = "transpose(0.5)".parse().unwrap();
    assert!(
        k9.simulate_workload(&transpose, &options)
            .unwrap()
            .delivered
            > 0
    );
    let db = Network::from_spec("DB(2,4)").unwrap(); // 16 = 2^4 processors
    let bitrev: TrafficSpec = "bitrev(0.5)".parse().unwrap();
    assert!(db.simulate_workload(&bitrev, &options).unwrap().delivered > 0);
}

/// A grid mixing every workload family produces identical rows at 1, 2 and
/// 64 threads — the determinism guarantee of the engine, now holding for
/// non-uniform traffic too.
#[test]
fn mixed_workload_grid_is_thread_count_independent() {
    // K(16) and DB(2,4) both have 16 processors: square AND a power of two,
    // so every pattern binds; POPS(4,4) too.
    let specs = ["K(16)", "DB(2,4)", "POPS(4,4)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let workloads: Vec<TrafficSpec> = [
        "uniform(0.3)",
        "perm(0.5,7)",
        "hotspot(0.4,0,0.2)",
        "transpose(0.5)",
        "bitrev(0.5)",
    ]
    .iter()
    .map(|w| w.parse().unwrap())
    .collect();
    let grid = ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[7, 11])
        .slots(120);
    assert_eq!(grid.cell_count(), 3 * 5 * 2);
    let serial = run_grid(&grid, 1).unwrap();
    assert_eq!(serial.len(), grid.cell_count());
    assert_eq!(serial, run_grid(&grid, 2).unwrap());
    assert_eq!(serial, run_grid(&grid, 64).unwrap());
    // Every row carries its workload and the load derived from it, and the
    // rendered table is thread-count independent along with the rows.
    for row in &serial {
        assert_eq!(row.offered_load, row.traffic.offered_load());
        assert!(!row.as_table_row().contains("NaN"));
    }
}

/// The config-file format declares the same study the builder API does.
#[test]
fn config_file_matches_builder_grid() {
    let text = "\
specs     K(16), DB(2,4)
workloads uniform(0.3), bitrev(0.5)
seeds     7
slots     120
";
    let config = parse_scenario_config(text).unwrap();
    let built = ScenarioGrid::new(vec!["K(16)".parse().unwrap(), "DB(2,4)".parse().unwrap()])
        .workloads(vec![
            "uniform(0.3)".parse().unwrap(),
            "bitrev(0.5)".parse().unwrap(),
        ])
        .seeds(&[7])
        .slots(120);
    assert_eq!(config.grid, built);
    assert_eq!(
        run_grid(&config.grid, 2).unwrap(),
        run_grid(&built, 4).unwrap()
    );
}
