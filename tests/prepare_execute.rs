//! Regression tests for the prepare/execute simulation split.
//!
//! The contract under test: reusing one prepared kernel per
//! `(spec, fault-pattern)` pair — which is what the scenario engine's cache
//! does — produces `SimMetrics` byte-identical to constructing the
//! simulator fresh for every cell, for both simulator families, at any
//! thread count, with and without faults.

use otis_lightwave::net::{
    run_grid, run_grid_streaming, CollectSink, FaultSet, Network, NetworkSpec, ScenarioGrid,
    SimOptions, TrafficSpec,
};
use otis_lightwave::routing::node_fault_patterns_up_to;
use otis_lightwave::sim::{
    HotPotatoSim, HotPotatoSimConfig, MultiOpsSim, MultiOpsSimConfig, SimMetrics,
};
use otis_lightwave::topologies::{de_bruijn, StackKautz};

/// The old per-cell behaviour, reproduced by hand: build the simulator —
/// graph copy, routing tables, everything — from scratch for one cell.
fn fresh_cell_metrics(
    spec: &NetworkSpec,
    workload: &TrafficSpec,
    options: &SimOptions,
) -> SimMetrics {
    let network = Network::new(*spec).unwrap();
    let pattern = workload
        .bind(network.node_count())
        .unwrap()
        .into_pattern()
        .expect("these cells sweep stationary workloads only");
    match *spec {
        NetworkSpec::DeBruijn { d, k } => HotPotatoSim::with_faults(
            de_bruijn(d, k),
            HotPotatoSimConfig {
                slots: options.slots,
                seed: options.seed,
                max_hops: options.max_hops,
                wavelengths: options.wavelengths,
            },
            options.faults.clone(),
        )
        .run(&pattern),
        NetworkSpec::StackKautz { s, d, k } => MultiOpsSim::with_faults(
            StackKautz::new(s, d, k).stack_graph().clone(),
            MultiOpsSimConfig {
                slots: options.slots,
                seed: options.seed,
                policy: options.policy,
                queue_limit: options.queue_limit,
                wavelengths: options.wavelengths,
            },
            options.faults.clone(),
        )
        .run(&pattern),
        _ => network.simulate(&pattern, options),
    }
}

/// One grid covering both simulator families with a fault sweep: SK(2,2,2)
/// exercises the multi-OPS kernel (fault ids are quotient groups, 0..6),
/// DB(2,3) the hot-potato kernel (fault ids are processors, 0..8).
fn mixed_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "DB(2,3)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let workloads: Vec<TrafficSpec> = ["uniform(0.4)", "perm(0.6,5)"]
        .iter()
        .map(|w| w.parse().unwrap())
        .collect();
    ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[3, 17])
        .fault_sets(node_fault_patterns_up_to(6, 1))
        .slots(150)
}

#[test]
fn cached_kernels_match_fresh_per_cell_construction_at_any_thread_count() {
    let grid = mixed_grid();
    assert_eq!(grid.cell_count(), 2 * 2 * 2 * 7);

    // The old behaviour: every cell builds its own simulator, serially, in
    // grid order (workloads, then specs, then seeds, then fault sets).
    let mut fresh = Vec::new();
    for workload in &grid.workloads {
        for spec in &grid.specs {
            for &seed in &grid.seeds {
                for faults in &grid.fault_sets {
                    let options = SimOptions {
                        seed,
                        faults: faults.clone(),
                        ..grid.options.clone()
                    };
                    fresh.push(fresh_cell_metrics(spec, workload, &options));
                }
            }
        }
    }

    // The engine path: kernels cached per (spec, fault-pattern), cells
    // sharing them across seeds, workloads and worker threads.
    for threads in [1usize, 2, 64] {
        let mut sink = CollectSink::new();
        let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
        let rows = sink.into_rows();
        assert_eq!(rows.len(), fresh.len());
        // Each distinct (spec, fault-pattern) pair was materialised exactly
        // once: one fault-free base per spec, delta-repaired into the six
        // non-empty fault patterns, 2 × 7 pairs in total.
        assert_eq!(summary.kernels_built, 2, "{threads} threads");
        assert_eq!(summary.kernels_repaired, 12, "{threads} threads");
        for (row, expected) in rows.iter().zip(&fresh) {
            assert_eq!(
                &row.metrics,
                expected,
                "{} / {} / seed {} / faults {:?} diverged at {threads} threads",
                row.spec,
                row.traffic,
                row.seed,
                row.faults.sorted_nodes()
            );
        }
    }
}

#[test]
fn facade_simulate_is_prepare_then_run() {
    // Network::simulate must stay byte-identical to an explicit
    // prepare-then-run, for every family and with faults installed.
    for spec in [
        "KG(2,3)",
        "II(3,12)",
        "DB(2,4)",
        "K(5)",
        "POPS(3,4)",
        "SK(2,2,2)",
        "SII(2,2,5)",
    ] {
        let network = Network::from_spec(spec).unwrap();
        for faults in [FaultSet::new(), FaultSet::from_nodes([0])] {
            let options = SimOptions::new(200, 9).with_faults(faults.clone());
            let kernel = network.prepare(&faults);
            let direct = network.simulate_uniform(0.3, &options);
            let via_kernel = kernel.run(
                &otis_lightwave::sim::TrafficPattern::Uniform { load: 0.3 },
                &options,
            );
            assert_eq!(direct, via_kernel, "{spec} with faults {faults:?}");
        }
    }
}

#[test]
fn kernel_reuse_across_seed_sweep_matches_run_grid() {
    // Sweeping seeds over one prepared kernel by hand gives exactly the
    // rows run_grid produces for a one-spec, one-workload, one-fault grid.
    let spec: NetworkSpec = "SK(2,2,2)".parse().unwrap();
    let faults = FaultSet::from_nodes([2]);
    let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let grid = ScenarioGrid::new(vec![spec])
        .loads(&[0.5])
        .seeds(&seeds)
        .fault_sets(vec![faults.clone()])
        .slots(120);
    let rows = run_grid(&grid, 4).unwrap();

    let network = Network::new(spec).unwrap();
    let kernel = network.prepare(&faults);
    let pattern = otis_lightwave::sim::TrafficPattern::Uniform { load: 0.5 };
    for (row, &seed) in rows.iter().zip(&seeds) {
        let options = SimOptions {
            seed,
            faults: faults.clone(),
            ..grid.options.clone()
        };
        assert_eq!(row.metrics, kernel.run(&pattern, &options), "seed {seed}");
    }
}
