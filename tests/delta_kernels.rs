//! Acceptance tests of the delta-repair constructors, driven through the
//! umbrella crate the way downstream users see it.
//!
//! The contract under test, end to end: deriving fault-pattern state from
//! the fault-free base by delta repair — routing tables, stack routers,
//! whole prepared kernels — is **bit-identical** to building that state
//! from scratch, for every fault set within the paper's `d − 1` tolerance
//! bound (degree-2 networks here, so every single fault plus the empty
//! set).

use otis_lightwave::net::{FaultSet, Network, SimOptions};
use otis_lightwave::routing::{
    node_fault_patterns_up_to, surviving_subgraph, RoutingTable, StackRouter,
};
use otis_lightwave::sim::TrafficPattern;
use otis_lightwave::topologies::{de_bruijn, StackKautz};

#[test]
fn repaired_tables_match_from_scratch_on_db_2_8() {
    // DB(2,8): 256 processors, degree 2, so the tolerance bound admits
    // every single-node fault.  Each repaired table must equal the table
    // computed from scratch on the surviving subgraph — same next hops,
    // same distances, every pair.
    let graph = de_bruijn(2, 8);
    let base = RoutingTable::new(&graph);
    for faults in node_fault_patterns_up_to(graph.node_count(), 1) {
        let survivor = surviving_subgraph(&graph, &faults);
        let repair = base.repaired(&survivor, &faults);
        assert_eq!(
            repair.table,
            RoutingTable::new(&survivor),
            "faults {:?}",
            faults.sorted_nodes()
        );
        // The repair must also be a genuine delta: a single fault never
        // forces every column to be recomputed.
        if !faults.is_empty() {
            assert!(
                repair.recomputed < graph.node_count(),
                "faults {:?} recomputed every column",
                faults.sorted_nodes()
            );
        }
    }
}

#[test]
fn repaired_stack_routers_match_from_scratch_on_sk_2_2_2() {
    // SK(2,2,2): the quotient is the degree-2 Kautz graph, so the bound
    // admits every single-group fault.  The repaired router must produce
    // exactly the routes of a from-scratch fault-aware construction for
    // every processor pair.
    let stack = StackKautz::new(2, 2, 2).stack_graph().clone();
    let processors = stack.node_count();
    let groups = stack.quotient().node_count();
    let base = StackRouter::new(stack.clone());
    for faults in node_fault_patterns_up_to(groups, 1) {
        let repair = StackRouter::from_repair(&base, &faults);
        let scratch = StackRouter::with_faults(stack.clone(), faults.clone());
        for src in 0..processors {
            for dst in 0..processors {
                assert_eq!(
                    repair.router.route(src, dst),
                    scratch.route(src, dst),
                    "route {src} -> {dst} under faults {:?}",
                    faults.sorted_nodes()
                );
            }
        }
    }
}

#[test]
fn repaired_alternates_match_from_scratch_yen_for_every_tolerated_fault_set() {
    // The repair-aware alternate-route contract: `repair` no longer reruns
    // group-level Yen in full — only group pairs the faults can have
    // disturbed are re-enumerated, and only pairs whose Yen list or primary
    // route changed are re-materialised.  The routing state (distance
    // tables, flat routes, Yen alternates) must nevertheless be
    // bit-identical to a from-scratch prepare for every fault set within
    // the paper's d − 1 tolerance bound, on both simulator families.
    for (spec, fault_ids, alt_paths) in [
        ("SK(2,2,2)", 6usize, 2usize),
        ("SK(2,2,2)", 6, 3),
        ("DB(2,8)", 256, 3),
    ] {
        let network = Network::from_spec(spec).unwrap();
        let base = network.prepare_with_alternates(&FaultSet::new(), alt_paths);
        for faults in node_fault_patterns_up_to(fault_ids, 1) {
            let fresh = network.prepare_with_alternates(&faults, alt_paths);
            let repaired = base.repair(&faults, alt_paths);
            assert!(
                repaired.routing_state_eq(&fresh),
                "{spec} (alt_paths {alt_paths}) routing state diverged under faults {:?}",
                faults.sorted_nodes()
            );
        }
    }
}

#[test]
fn repaired_kernels_run_byte_identical_to_fresh_kernels() {
    // The engine-level contract: a kernel delta-repaired from the
    // fault-free base produces metrics byte-identical to a kernel prepared
    // from scratch for the fault pattern — both simulator families, with
    // and without alternate routes.
    for (spec, fault_ids, alt_paths) in [
        ("SK(2,2,2)", 6usize, 1usize),
        ("SK(2,2,2)", 6, 3),
        ("DB(2,8)", 256, 1),
    ] {
        let network = Network::from_spec(spec).unwrap();
        let base = network.prepare_with_alternates(&FaultSet::new(), alt_paths);
        let traffic = TrafficPattern::Uniform { load: 0.5 };
        for faults in node_fault_patterns_up_to(fault_ids, 1) {
            let fresh = network.prepare_with_alternates(&faults, alt_paths);
            let repaired = base.repair(&faults, alt_paths);
            assert_eq!(repaired.faults(), fresh.faults(), "{spec}");
            let options = SimOptions::new(120, 7).with_faults(faults.clone());
            assert_eq!(
                repaired.run(&traffic, &options),
                fresh.run(&traffic, &options),
                "{spec} (alt_paths {alt_paths}) diverged under faults {:?}",
                faults.sorted_nodes()
            );
        }
    }
}
