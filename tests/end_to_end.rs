//! Integration tests spanning the whole workspace: topology → optical design
//! → verification → routing → simulation.

use otis_lightwave::designs::{ImaseItohDesign, KautzDesign, PopsDesign, StackKautzDesign};
use otis_lightwave::graphs::algorithms::diameter;
use otis_lightwave::routing::{PopsRouter, StackRouter};
use otis_lightwave::sim::{ArbitrationPolicy, MultiOpsSim, MultiOpsSimConfig, TrafficPattern};
use otis_lightwave::topologies::{kautz, kautz_node_count, Pops, StackKautz};

/// The paper's headline pipeline: build SK(6,3,2) as a graph, build its
/// optical design, verify the design against the graph, route on it, and
/// simulate traffic over it — all layers must agree.
#[test]
fn stack_kautz_full_pipeline() {
    // Topology layer.
    let sk = StackKautz::new(6, 3, 2);
    assert_eq!(sk.node_count(), 72);
    assert_eq!(sk.diameter(), Some(2));

    // Optical design layer (Fig. 12) — verified by signal tracing.
    let design = StackKautzDesign::new(6, 3, 2);
    let report = design.verify().expect("design must realize SK(6,3,2)");
    assert_eq!(report.processors, sk.node_count());
    assert_eq!(report.links, sk.coupler_count());
    assert_eq!(design.inventory(), design.expected_inventory());

    // The traced one-hop adjacency has the same diameter as the topology.
    let induced = design.design().induced_digraph();
    assert_eq!(diameter(&induced), Some(2));

    // Routing layer: every pair routes within the diameter.
    let router = StackRouter::new(sk.stack_graph().clone());
    let mut worst = 0usize;
    for src in (0..sk.node_count()).step_by(5) {
        for dst in (0..sk.node_count()).step_by(3) {
            worst = worst.max(router.route(src, dst).unwrap().len());
        }
    }
    assert!(worst <= 2);

    // Simulation layer: traffic flows and is conserved.
    let metrics = MultiOpsSim::new(
        sk.stack_graph().clone(),
        MultiOpsSimConfig {
            slots: 500,
            ..Default::default()
        },
    )
    .run(&TrafficPattern::Uniform { load: 0.2 });
    assert!(metrics.delivered > 0);
    assert_eq!(
        metrics.injected,
        metrics.delivered + metrics.in_flight + metrics.dropped
    );
    assert!(metrics.average_hops() <= 2.0 + 1e-9);
}

/// POPS pipeline: topology, design, coupler-level routing and scheduling.
#[test]
fn pops_full_pipeline() {
    let pops = Pops::new(4, 2);
    let design = PopsDesign::new(4, 2);
    let report = design.verify().expect("design must realize POPS(4,2)");
    assert_eq!(report.processors, pops.node_count());

    // Paper-consistent hardware: g OTIS(t,g), g OTIS(g,t), one OTIS(g,g).
    let inv = design.inventory();
    assert_eq!(inv.otis_units_of(4, 2), 2);
    assert_eq!(inv.otis_units_of(2, 4), 2);
    assert_eq!(inv.otis_units_of(2, 2), 1);

    // Single-hop routing: the coupler chosen for any pair is (src group, dst group).
    let router = PopsRouter::new(pops.clone());
    for src in 0..pops.node_count() {
        for dst in 0..pops.node_count() {
            let coupler = router.unicast_coupler(src, dst);
            let (i, j) = pops.coupler_label(coupler);
            assert_eq!(i, pops.processor_label(src).0);
            assert_eq!(j, pops.processor_label(dst).0);
        }
    }

    // A full permutation is scheduled without coupler conflicts.
    let n = pops.node_count();
    let messages: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let schedule = router.schedule_messages(&messages);
    assert!(schedule.is_conflict_free());
    assert_eq!(schedule.message_count(), n);
}

/// Corollary 1 glue: the single-OTIS Kautz design, the word-label Kautz graph
/// and the Imase–Itoh arithmetic must all describe the same network.
#[test]
fn kautz_design_matches_both_constructions() {
    for (d, k) in [(2usize, 2usize), (2, 3), (3, 2)] {
        let design = KautzDesign::new(d, k);
        design.verify().expect("Corollary 1");
        assert!(design.verify_kautz_isomorphism());
        assert_eq!(design.node_count(), kautz_node_count(d, k));
        assert_eq!(design.node_count(), kautz(d, k).node_count());
    }
}

/// Proposition 1 at a non-Kautz size, and the loss budget of the realization.
#[test]
fn imase_itoh_design_at_arbitrary_size() {
    let design = ImaseItohDesign::new(4, 23);
    design.verify().expect("Proposition 1 holds for II(4,23)");
    // Point-to-point through a single OTIS: exactly one lens-pair of loss.
    assert!(design.design().worst_case_loss_db() < 2.0);
    let inv = design.inventory();
    assert_eq!(inv.otis_units(), 1);
    assert_eq!(inv.transmitter_count(), 4 * 23);
}

/// The simulator respects the single-wavelength constraint: per-slot grants
/// never exceed the number of couplers.
#[test]
fn simulator_never_exceeds_coupler_capacity() {
    let pops = Pops::new(6, 3);
    let slots = 400u64;
    let metrics = MultiOpsSim::new(
        pops.stack_graph().clone(),
        MultiOpsSimConfig {
            slots,
            policy: ArbitrationPolicy::RoundRobin,
            ..Default::default()
        },
    )
    .run(&TrafficPattern::Uniform { load: 1.0 });
    assert!(metrics.grants <= slots * pops.coupler_count() as u64);
    assert!(metrics.channel_utilization() <= 1.0 + 1e-9);
}

/// Stack-Imase-Itoh designs work for processor counts that are not Kautz
/// sizes — the practical reason the paper mentions the extension.
#[test]
fn stack_imase_itoh_covers_arbitrary_group_counts() {
    use otis_lightwave::designs::StackImaseItohDesign;
    for n in [5usize, 9, 14] {
        let design = StackImaseItohDesign::new(3, 2, n);
        design
            .verify()
            .unwrap_or_else(|e| panic!("SII(3,2,{n}) failed: {e}"));
        assert_eq!(design.processor_count(), 3 * n);
    }
}
