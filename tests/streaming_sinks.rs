//! End-to-end tests of the streaming result surface: `run_grid_streaming`
//! plus the built-in sinks, driven through the umbrella crate the way
//! downstream users see them.
//!
//! Pins the PR-4 acceptance bar: `run_grid` is a thin wrapper over
//! `run_grid_streaming` + `CollectSink`, streamed byte output is identical
//! at 1/2/64 threads, peak row buffering is bounded by the reorder window,
//! and zero-delivery sentinels are format-aware (`-` in the table, empty in
//! CSV, `null` in JSONL — never `NaN`).

use otis_lightwave::net::{
    reorder_window, run_grid, run_grid_streaming, CollectSink, CsvSink, JsonLinesSink, NetworkSpec,
    ScenarioGrid, TableSink, TrafficSpec,
};

/// A mixed-workload grid: 3 specs x 3 workloads x 2 seeds = 18 cells.
fn mixed_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let workloads: Vec<TrafficSpec> = ["uniform(0.3)", "perm(0.5,7)", "hotspot(0.4,0,0.2)"]
        .iter()
        .map(|w| w.parse().unwrap())
        .collect();
    ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[3, 11])
        .slots(120)
}

#[test]
fn run_grid_equals_streaming_into_a_collect_sink() {
    let grid = mixed_grid();
    let wrapped = run_grid(&grid, 4).unwrap();
    let mut sink = CollectSink::new();
    let summary = run_grid_streaming(&grid, 4, &mut sink).unwrap();
    assert_eq!(summary.rows, grid.cell_count());
    assert!(
        summary.peak_buffered <= reorder_window(4),
        "peak {} exceeds window {}",
        summary.peak_buffered,
        reorder_window(4)
    );
    let streamed = sink.into_rows();
    assert_eq!(wrapped, streamed);
    // Byte-for-byte: the rendered tables agree too.
    let wrapped_text: Vec<String> = wrapped.iter().map(|r| r.as_table_row()).collect();
    let streamed_text: Vec<String> = streamed.iter().map(|r| r.as_table_row()).collect();
    assert_eq!(wrapped_text, streamed_text);
}

#[test]
fn streamed_bytes_are_identical_at_1_2_and_64_threads() {
    let grid = mixed_grid();
    let render = |threads: usize| {
        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut jsonl).unwrap();
        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut csv).unwrap();
        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut table).unwrap();
        (jsonl.into_inner(), csv.into_inner(), table.into_inner())
    };
    let baseline = render(1);
    assert_eq!(baseline, render(2));
    assert_eq!(baseline, render(64));
}

#[test]
fn jsonl_and_csv_line_counts_match_the_cell_count() {
    let grid = mixed_grid();
    let mut jsonl = JsonLinesSink::new(Vec::new());
    run_grid_streaming(&grid, 8, &mut jsonl).unwrap();
    let text = String::from_utf8(jsonl.into_inner()).unwrap();
    assert_eq!(text.lines().count(), grid.cell_count());
    for line in text.lines() {
        assert!(line.starts_with("{\"spec\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    let mut csv = CsvSink::new(Vec::new());
    run_grid_streaming(&grid, 8, &mut csv).unwrap();
    let text = String::from_utf8(csv.into_inner()).unwrap();
    // One header record plus one record per cell.
    assert_eq!(text.lines().count(), 1 + grid.cell_count());
}

#[test]
fn zero_delivery_sentinels_are_format_aware_end_to_end() {
    // Load 0.0 injects nothing: the latency/hops averages are undefined.
    let grid = ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
        .loads(&[0.0])
        .slots(50);

    let mut table = TableSink::new(Vec::new());
    run_grid_streaming(&grid, 1, &mut table).unwrap();
    let table = String::from_utf8(table.into_inner()).unwrap();
    assert!(table.contains('-'), "{table}");
    assert!(!table.contains("NaN"), "{table}");

    let mut csv = CsvSink::new(Vec::new());
    run_grid_streaming(&grid, 1, &mut csv).unwrap();
    let csv = String::from_utf8(csv.into_inner()).unwrap();
    let record = csv.lines().nth(1).unwrap();
    assert!(
        record.contains(",,"),
        "undefined fields are empty: {record}"
    );
    assert!(!record.contains("NaN"), "{record}");
    // The '-' sentinel belongs to the table; CSV fields are empty instead.
    assert!(!record.split(',').any(|f| f == "-"), "{record}");

    let mut jsonl = JsonLinesSink::new(Vec::new());
    run_grid_streaming(&grid, 1, &mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl.into_inner()).unwrap();
    assert!(jsonl.contains("\"avg_latency\":null"), "{jsonl}");
    assert!(jsonl.contains("\"avg_hops\":null"), "{jsonl}");
    assert!(jsonl.contains("\"delivery_ratio\":null"), "{jsonl}");
    assert!(!jsonl.contains("NaN"), "{jsonl}");
    assert!(!jsonl.contains("\"-\""), "{jsonl}");
}

#[test]
fn csv_quotes_comma_bearing_specs_and_keeps_a_stable_header() {
    let grid = ScenarioGrid::new(vec!["SK(2,2,2)".parse().unwrap()])
        .loads(&[0.2])
        .slots(60);
    let mut csv = CsvSink::new(Vec::new());
    run_grid_streaming(&grid, 1, &mut csv).unwrap();
    let text = String::from_utf8(csv.into_inner()).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert!(
        header.starts_with("spec,traffic,load,seed,fault_count,faults,processors,"),
        "{header}"
    );
    let record = lines.next().unwrap();
    assert!(record.starts_with("\"SK(2,2,2)\","), "{record}");
    // Quoting keeps the column count aligned with the header: splitting on
    // commas outside quotes yields exactly one field per header column.
    let mut fields = 0usize;
    let mut in_quotes = false;
    for c in record.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields += 1,
            _ => {}
        }
    }
    assert_eq!(fields + 1, header.split(',').count());
}
