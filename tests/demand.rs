//! End-to-end tests of the demand subsystem (PR 9): stochastic arrival
//! processes and trace replay driven through the umbrella crate the way
//! downstream users see them.
//!
//! Pins the acceptance bar:
//!
//! 1. stationary-workload grids still stream byte-identical to the seed
//!    goldens at 1/2/8/64 threads — the demand layer added a code path, it
//!    did not move the legacy one;
//! 2. stochastic-workload grids are deterministic per seed and
//!    thread-count independent;
//! 3. trace replay is streamed: demand state stays bounded by a constant
//!    lookahead buffer regardless of trace length (a synthetic
//!    million-slot trace never materialises);
//! 4. the checked-in `examples/demand.trc` replays with exact row and
//!    injection counts, and its undefined offered load renders as a
//!    sentinel, never `NaN`.

use otis_lightwave::net::{
    run_grid, run_grid_streaming, CsvSink, GridWarning, JsonLinesSink, Network, NetworkSpec,
    ScenarioGrid, SimOptions, TableSink, TrafficSpec,
};
use otis_lightwave::routing::FaultSet;
use otis_lightwave::sim::{DemandSource, TraceReplay};
use std::io::{self, BufReader, Read};

/// The exact grid the golden files were generated from (see
/// `tests/wavelength_layer.rs`, which documents the seed command line).
fn golden_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "POPS(3,4)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    ScenarioGrid::new(specs)
        .loads(&[0.2, 0.6])
        .seeds(&[7, 11])
        .slots(120)
}

#[test]
fn stationary_grids_still_stream_bytes_identical_to_the_seed_goldens() {
    let grid = golden_grid();
    for threads in [1, 2, 8, 64] {
        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut table).unwrap();
        assert_eq!(
            String::from_utf8(table.into_inner()).unwrap(),
            include_str!("golden/grid_small.table"),
            "table output drifted from the seed golden at {threads} threads"
        );
        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut csv).unwrap();
        assert_eq!(
            String::from_utf8(csv.into_inner()).unwrap(),
            include_str!("golden/grid_small.csv"),
            "CSV output drifted from the seed golden at {threads} threads"
        );
        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut jsonl).unwrap();
        assert_eq!(
            String::from_utf8(jsonl.into_inner()).unwrap(),
            include_str!("golden/grid_small.jsonl"),
            "JSONL output drifted from the seed golden at {threads} threads"
        );
    }
}

/// A grid mixing every stochastic demand process with a stationary pattern,
/// over both simulator families.
fn stochastic_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "DB(2,4)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let workloads: Vec<TrafficSpec> = [
        "uniform(0.3)",
        "poisson(0.4)",
        "poisson(0.3,0)",
        "onoff(0.9,8,24)",
        "mix(0.125,0.9,0.05)",
    ]
    .iter()
    .map(|w| w.parse().unwrap())
    .collect();
    ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[3, 11])
        .slots(150)
}

#[test]
fn stochastic_grids_are_deterministic_per_seed_and_thread_count() {
    let grid = stochastic_grid();
    let baseline = run_grid(&grid, 1).unwrap();
    assert_eq!(baseline.len(), grid.cell_count());
    for threads in [2, 8, 64] {
        assert_eq!(
            baseline,
            run_grid(&grid, threads).unwrap(),
            "stochastic rows drifted at {threads} threads"
        );
    }
    // Re-running is reproducible (no hidden global RNG state)...
    assert_eq!(baseline, run_grid(&grid, 4).unwrap());
    // ...and the seed actually reaches the generators: sibling rows that
    // differ only in seed must differ in metrics for the stochastic cells.
    for pair in baseline.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.spec, b.spec);
        assert_ne!(a.seed, b.seed);
        if a.traffic.offered_load() > 0.0 {
            assert_ne!(
                a.metrics, b.metrics,
                "different seeds produced identical runs for {}",
                a.traffic
            );
        }
    }
    // Stochastic offered loads carry the expected per-slot rate.
    for row in &baseline {
        assert!(
            row.offered_load.is_finite(),
            "no trace in this grid: load must be defined"
        );
        assert_eq!(row.offered_load, row.traffic.offered_load());
    }
}

/// An unbounded synthetic trace: one injection per slot, forever.  Reading
/// it to the end would never terminate, so the replay passing this test
/// proves demand state is a constant lookahead buffer, not the trace.
struct EndlessTrace {
    slot: u64,
    pending: Vec<u8>,
}

impl Read for EndlessTrace {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pending.is_empty() {
            let src = self.slot % 16;
            let dst = (src + 1) % 16;
            self.pending = format!("{} {src} {dst}\n", self.slot).into_bytes();
            self.slot += 1;
        }
        let n = self.pending.len().min(buf.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

#[test]
fn trace_replay_is_bounded_memory_end_to_end() {
    // Drive a full simulation from an *infinite* trace: 500 slots on
    // DB(2,4) (16 processors), one scripted injection per slot.
    let network = Network::from_spec("DB(2,4)").unwrap();
    let kernel = network.prepare(&FaultSet::new());
    let mut source = DemandSource::Trace(TraceReplay::new(BufReader::new(EndlessTrace {
        slot: 0,
        pending: Vec::new(),
    })));
    let options = SimOptions::new(500, 9);
    let metrics = kernel.run_demand(&mut source, &options);
    assert_eq!(metrics.injected, 500, "one scripted injection per slot");
    // The replay consumed exactly the served slots plus one lookahead
    // event — not the (endless) rest of the trace.
    match &source {
        DemandSource::Trace(replay) => assert_eq!(replay.lines_consumed(), 501),
        _ => unreachable!(),
    }
}

#[test]
fn checked_in_example_trace_replays_with_exact_counts() {
    // examples/demand.trc scripts 29 injections over slots 0..=63 against
    // nodes 0..31; integration tests run from the workspace root.
    let workload: TrafficSpec = "trace(examples/demand.trc)".parse().unwrap();
    let grid = ScenarioGrid::new(vec!["DB(2,5)".parse().unwrap()])
        .workloads(vec![workload])
        .seeds(&[42])
        .slots(200);
    let rows = run_grid(&grid, 2).unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.metrics.injected, 29, "every scripted event injects");
    assert_eq!(
        row.metrics.injected,
        row.metrics.delivered + row.metrics.dropped,
        "nothing is left in flight after 200 slots"
    );
    // A trace has no a-priori rate, but the bind-time validation pass
    // measures one: 29 events over slots 0..=63 on 32 nodes.  The load
    // column carries the measured mean in every format — the undefined
    // sentinels (`-`, `null`) are reserved for genuinely undefined cells.
    assert_eq!(row.offered_load, 29.0 / (64.0 * 32.0));
    assert!(
        row.as_table_row().contains("0.014"),
        "{}",
        row.as_table_row()
    );
    let mut jsonl = JsonLinesSink::new(Vec::new());
    run_grid_streaming(&grid, 1, &mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl.into_inner()).unwrap();
    assert!(!jsonl.contains("\"load\":null"), "{jsonl}");
    assert!(jsonl.contains("\"load\":0.014"), "{jsonl}");
    assert!(!jsonl.contains("NaN"), "{jsonl}");
    // Replays are deterministic outright — the seed never reaches them.
    let reseeded = {
        let mut grid = grid.clone();
        grid.seeds = vec![43];
        run_grid(&grid, 1).unwrap()
    };
    assert_eq!(rows[0].metrics, reseeded[0].metrics);
}

#[test]
fn trace_workloads_crossed_with_many_seeds_warn() {
    let workload: TrafficSpec = "trace(examples/demand.trc)".parse().unwrap();
    let mut grid = ScenarioGrid::new(vec!["DB(2,5)".parse().unwrap()])
        .workloads(vec![workload.clone()])
        .seeds(&[1, 2, 3]);
    assert_eq!(
        grid.warnings(),
        vec![GridWarning::TraceWorkloadWithMultipleSeeds {
            workload: workload.to_string(),
            seeds: 3,
        }]
    );
    // A single seed is the intended way to run a replay: no warning.
    grid.seeds = vec![1];
    assert_eq!(grid.warnings(), vec![]);
}

#[test]
fn trace_node_ids_are_validated_against_the_network_size() {
    // The same trace refuses to bind to a 16-processor network: node ids
    // up to 31 are out of range, and the error carries the trace's own
    // line number (mirroring `.scn` line-numbered errors).
    let workload: TrafficSpec = "trace(examples/demand.trc)".parse().unwrap();
    let grid = ScenarioGrid::new(vec!["DB(2,4)".parse().unwrap()])
        .workloads(vec![workload])
        .slots(50);
    let err = run_grid(&grid, 1).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("examples/demand.trc"), "{message}");
    assert!(message.contains("line"), "{message}");
    assert!(message.contains("16"), "{message}");
}
