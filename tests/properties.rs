//! Property-style tests on the core invariants of the workspace: OTIS
//! permutation laws, topology closed forms, stack-graph projection laws,
//! routing bounds and design verification.
//!
//! The build environment is offline, so instead of `proptest` these sweep
//! deterministic parameter grids (every small instance) plus pseudo-random
//! node pairs drawn from a seeded generator — the same coverage, repeatable
//! by construction.

use otis_lightwave::designs::{ImaseItohDesign, PopsDesign, StackKautzDesign};
use otis_lightwave::graphs::algorithms::{diameter, is_strongly_connected, is_valid_path};
use otis_lightwave::graphs::{line_digraph, StackGraph};
use otis_lightwave::optics::Otis;
use otis_lightwave::routing::{imase_itoh_route, kautz_route, RoutingTable};
use otis_lightwave::topologies::{
    de_bruijn, imase_itoh, kautz, kautz_node_count, moore_bound, KautzWord, Pops, StackKautz,
};

/// A tiny deterministic generator for sampling node pairs (SplitMix64).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The OTIS map is a bijection and composing with the transposed system
/// restores every position, for every (G, T) in 1..12 × 1..12.
#[test]
fn otis_is_a_bijective_transpose() {
    for g in 1usize..12 {
        for t in 1usize..12 {
            let otis = Otis::new(g, t);
            let perm = otis.permutation();
            let mut seen = vec![false; perm.len()];
            for &rx in &perm {
                assert!(!seen[rx], "OTIS({g},{t}) repeats receiver {rx}");
                seen[rx] = true;
            }
            let back = otis.transposed();
            for i in 0..g {
                for j in 0..t {
                    let (p, q) = otis.map_pair(i, j);
                    assert_eq!(back.map_pair(p, q), (i, j), "OTIS({g},{t}) at ({i},{j})");
                }
            }
        }
    }
}

/// Kautz words round-trip through their integer index.
#[test]
fn kautz_word_index_roundtrip() {
    let mut mix = Mix(1);
    for d in 1usize..5 {
        for k in 1usize..5 {
            let n = kautz_node_count(d, k);
            for _ in 0..12 {
                let idx = mix.below(n);
                let w = KautzWord::from_index(d, k, idx).unwrap();
                assert_eq!(w.index(), idx);
                assert_eq!(w.len(), k);
                assert!(w.letters().windows(2).all(|p| p[0] != p[1]));
            }
        }
    }
}

/// KG(d,k) is d-regular with d^(k-1)(d+1) nodes, never exceeds the Moore
/// bound, and its line digraph is (node/arc-count) consistent with KG(d,k+1).
#[test]
fn kautz_closed_forms() {
    for d in 2usize..4 {
        for k in 1usize..4 {
            let g = kautz(d, k);
            assert_eq!(g.node_count(), kautz_node_count(d, k));
            assert!(g.is_d_regular(d));
            assert!(g.node_count() <= moore_bound(d, k));
            let l = line_digraph(&g);
            assert_eq!(l.node_count(), kautz_node_count(d, k + 1));
            assert_eq!(l.arc_count(), kautz_node_count(d, k + 1) * d);
        }
    }
}

/// II(d,n) is d-in/d-out regular and strongly connected for d >= 2.
#[test]
fn imase_itoh_regular_and_connected() {
    for d in 2usize..5 {
        for n in (4usize..60).step_by(3) {
            let g = imase_itoh(d, n);
            for u in 0..n {
                assert_eq!(g.out_degree(u), d, "II({d},{n}) node {u}");
                assert_eq!(g.in_degree(u), d, "II({d},{n}) node {u}");
            }
            assert!(is_strongly_connected(&g), "II({d},{n})");
        }
    }
}

/// Stack-graph bookkeeping: node counts, fibre membership, projection.
#[test]
fn stack_graph_projection_laws() {
    for s in 1usize..6 {
        for d in 2usize..4 {
            for k in 1usize..3 {
                let quotient = kautz(d, k).with_loops();
                let quotient_nodes = quotient.node_count();
                let sg = StackGraph::new(s, quotient).unwrap();
                assert_eq!(sg.node_count(), s * quotient_nodes);
                for node in 0..sg.node_count() {
                    let sn = sg.to_stack_node(node);
                    assert_eq!(sg.to_flat(sn), node);
                    assert!(sg.fiber(sn.group).contains(&node));
                    assert_eq!(sg.project(node), sn.group);
                }
            }
        }
    }
}

/// Kautz label routing: always a valid path of at most k arcs.
#[test]
fn kautz_label_routing_bound() {
    let mut mix = Mix(2);
    for d in 2usize..4 {
        for k in 1usize..4 {
            let g = kautz(d, k);
            let n = g.node_count();
            for _ in 0..16 {
                let src = mix.below(n);
                let dst = mix.below(n);
                let path = kautz_route(d, k, src, dst);
                assert!(is_valid_path(&g, &path), "KG({d},{k}) {src}->{dst}");
                assert!(path.len() - 1 <= k, "KG({d},{k}) {src}->{dst}");
            }
        }
    }
}

/// Imase-Itoh arithmetic routing equals the BFS distance.
#[test]
fn imase_itoh_routing_is_shortest() {
    let mut mix = Mix(3);
    for d in 2usize..4 {
        for n in (4usize..40).step_by(5) {
            let g = imase_itoh(d, n);
            let table = RoutingTable::new(&g);
            for _ in 0..16 {
                let src = mix.below(n);
                let dst = mix.below(n);
                let path = imase_itoh_route(d, n, src, dst);
                assert!(is_valid_path(&g, &path), "II({d},{n}) {src}->{dst}");
                assert_eq!(
                    (path.len() - 1) as u32,
                    table.distance(src, dst).unwrap(),
                    "II({d},{n}) {src}->{dst}"
                );
            }
        }
    }
}

/// de Bruijn and Kautz diameters match their closed forms.
#[test]
fn diameters_match_closed_forms() {
    for d in 2usize..4 {
        for k in 1usize..4 {
            assert_eq!(diameter(&kautz(d, k)), Some(k as u32));
            assert_eq!(diameter(&de_bruijn(d, k)), Some(k as u32));
        }
    }
}

/// POPS is always single-hop and its stack-graph model has g² hyperarcs.
#[test]
fn pops_is_single_hop() {
    for t in 1usize..6 {
        for g in 2usize..6 {
            let pops = Pops::new(t, g);
            assert_eq!(pops.diameter(), Some(1), "POPS({t},{g})");
            assert_eq!(pops.coupler_count(), g * g);
            assert_eq!(pops.hypergraph().hyperarc_count(), g * g);
        }
    }
}

/// The stack-Kautz inherits the Kautz diameter.
#[test]
fn stack_kautz_inherits_diameter() {
    for s in 1usize..4 {
        for d in 2usize..4 {
            for k in 1usize..3 {
                let sk = StackKautz::new(s, d, k);
                assert_eq!(sk.diameter(), Some(k as u32), "SK({s},{d},{k})");
                assert_eq!(sk.coupler_count(), sk.group_count() * (d + 1));
            }
        }
    }
}

/// Proposition 1 holds for arbitrary (d, n): the OTIS(d, n) design realizes
/// II(d, n) exactly.  (Design construction is the slow part, so the grid is
/// coarser.)
#[test]
fn proposition_1_across_parameters() {
    for d in 1usize..5 {
        for n in [2usize, 3, 7, 12, 23, 39] {
            assert!(ImaseItohDesign::new(d, n).verify().is_ok(), "II({d},{n})");
        }
    }
}

/// The POPS OTIS design realizes ς(t, K⁺_g) for small (t, g).
#[test]
fn pops_design_across_parameters() {
    for t in 1usize..6 {
        for g in 2usize..5 {
            assert!(PopsDesign::new(t, g).verify().is_ok(), "POPS({t},{g})");
        }
    }
}

/// The stack-Kautz OTIS design realizes its stack-graph and matches the
/// closed-form hardware inventory for small (s, d, k).
#[test]
fn stack_kautz_design_across_parameters() {
    for s in 1usize..4 {
        for d in 2usize..4 {
            for k in 1usize..3 {
                let design = StackKautzDesign::new(s, d, k);
                assert!(design.verify().is_ok(), "SK({s},{d},{k})");
                assert_eq!(
                    design.inventory(),
                    design.expected_inventory(),
                    "SK({s},{d},{k})"
                );
            }
        }
    }
}
