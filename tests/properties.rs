//! Property-based tests (proptest) on the core invariants of the workspace:
//! OTIS permutation laws, topology closed forms, stack-graph projection laws,
//! routing bounds and design verification across randomly drawn parameters.

use otis_lightwave::designs::{ImaseItohDesign, PopsDesign, StackKautzDesign};
use otis_lightwave::graphs::algorithms::{diameter, is_strongly_connected, is_valid_path};
use otis_lightwave::graphs::{line_digraph, StackGraph};
use otis_lightwave::optics::Otis;
use otis_lightwave::routing::{imase_itoh_route, kautz_route, RoutingTable};
use otis_lightwave::topologies::{
    de_bruijn, imase_itoh, kautz, kautz_node_count, moore_bound, KautzWord, Pops, StackKautz,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The OTIS map is a bijection and composing with the transposed system
    /// restores every position, for arbitrary (G, T).
    #[test]
    fn otis_is_a_bijective_transpose(g in 1usize..12, t in 1usize..12) {
        let otis = Otis::new(g, t);
        let perm = otis.permutation();
        let mut seen = vec![false; perm.len()];
        for &rx in &perm {
            prop_assert!(!seen[rx]);
            seen[rx] = true;
        }
        let back = otis.transposed();
        for i in 0..g {
            for j in 0..t {
                let (p, q) = otis.map_pair(i, j);
                prop_assert_eq!(back.map_pair(p, q), (i, j));
            }
        }
    }

    /// Kautz words round-trip through their integer index.
    #[test]
    fn kautz_word_index_roundtrip(d in 1usize..5, k in 1usize..5, seed in any::<u64>()) {
        let n = kautz_node_count(d, k);
        let idx = (seed as usize) % n;
        let w = KautzWord::from_index(d, k, idx).unwrap();
        prop_assert_eq!(w.index(), idx);
        prop_assert_eq!(w.len(), k);
        prop_assert!(w.letters().windows(2).all(|p| p[0] != p[1]));
    }

    /// KG(d,k) is d-regular with d^(k-1)(d+1) nodes, never exceeds the Moore
    /// bound, and its line digraph is (node/arc-count) consistent with KG(d,k+1).
    #[test]
    fn kautz_closed_forms(d in 2usize..4, k in 1usize..4) {
        let g = kautz(d, k);
        prop_assert_eq!(g.node_count(), kautz_node_count(d, k));
        prop_assert!(g.is_d_regular(d));
        prop_assert!(g.node_count() <= moore_bound(d, k));
        let l = line_digraph(&g);
        prop_assert_eq!(l.node_count(), kautz_node_count(d, k + 1));
        prop_assert_eq!(l.arc_count(), kautz_node_count(d, k + 1) * d);
    }

    /// II(d,n) is d-in/d-out regular and strongly connected for d >= 2.
    #[test]
    fn imase_itoh_regular_and_connected(d in 2usize..5, n in 4usize..60) {
        let g = imase_itoh(d, n);
        for u in 0..n {
            prop_assert_eq!(g.out_degree(u), d);
            prop_assert_eq!(g.in_degree(u), d);
        }
        prop_assert!(is_strongly_connected(&g));
    }

    /// Stack-graph bookkeeping: node counts, fibre membership, projection.
    #[test]
    fn stack_graph_projection_laws(s in 1usize..6, d in 2usize..4, k in 1usize..3) {
        let quotient = kautz(d, k).with_loops();
        let quotient_nodes = quotient.node_count();
        let sg = StackGraph::new(s, quotient).unwrap();
        prop_assert_eq!(sg.node_count(), s * quotient_nodes);
        for node in 0..sg.node_count() {
            let sn = sg.to_stack_node(node);
            prop_assert_eq!(sg.to_flat(sn), node);
            prop_assert!(sg.fiber(sn.group).contains(&node));
            prop_assert_eq!(sg.project(node), sn.group);
        }
    }

    /// Kautz label routing: always a valid path of at most k arcs.
    #[test]
    fn kautz_label_routing_bound(d in 2usize..4, k in 1usize..4, seed in any::<u64>()) {
        let g = kautz(d, k);
        let n = g.node_count();
        let src = (seed as usize) % n;
        let dst = ((seed >> 16) as usize) % n;
        let path = kautz_route(d, k, src, dst);
        prop_assert!(is_valid_path(&g, &path));
        prop_assert!(path.len() - 1 <= k);
    }

    /// Imase-Itoh arithmetic routing equals the BFS distance.
    #[test]
    fn imase_itoh_routing_is_shortest(d in 2usize..4, n in 4usize..40, seed in any::<u64>()) {
        let g = imase_itoh(d, n);
        let table = RoutingTable::new(&g);
        let src = (seed as usize) % n;
        let dst = ((seed >> 16) as usize) % n;
        let path = imase_itoh_route(d, n, src, dst);
        prop_assert!(is_valid_path(&g, &path));
        prop_assert_eq!((path.len() - 1) as u32, table.distance(src, dst).unwrap());
    }

    /// de Bruijn and Kautz diameters match their closed forms.
    #[test]
    fn diameters_match_closed_forms(d in 2usize..4, k in 1usize..4) {
        prop_assert_eq!(diameter(&kautz(d, k)), Some(k as u32));
        prop_assert_eq!(diameter(&de_bruijn(d, k)), Some(k as u32));
    }

    /// POPS is always single-hop and its stack-graph model has g² hyperarcs.
    #[test]
    fn pops_is_single_hop(t in 1usize..6, g in 2usize..6) {
        let pops = Pops::new(t, g);
        prop_assert_eq!(pops.diameter(), Some(1));
        prop_assert_eq!(pops.coupler_count(), g * g);
        prop_assert_eq!(pops.hypergraph().hyperarc_count(), g * g);
    }

    /// The stack-Kautz inherits the Kautz diameter.
    #[test]
    fn stack_kautz_inherits_diameter(s in 1usize..4, d in 2usize..4, k in 1usize..3) {
        let sk = StackKautz::new(s, d, k);
        prop_assert_eq!(sk.diameter(), Some(k as u32));
        prop_assert_eq!(sk.coupler_count(), sk.group_count() * (d + 1));
    }
}

proptest! {
    // The design-verification properties construct whole netlists, so run
    // fewer random cases to keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Proposition 1 holds for arbitrary (d, n): the OTIS(d, n) design
    /// realizes II(d, n) exactly.
    #[test]
    fn proposition_1_random_parameters(d in 1usize..5, n in 2usize..40) {
        let design = ImaseItohDesign::new(d, n);
        prop_assert!(design.verify().is_ok());
    }

    /// The POPS OTIS design realizes ς(t, K⁺_g) for arbitrary small (t, g).
    #[test]
    fn pops_design_random_parameters(t in 1usize..6, g in 2usize..5) {
        let design = PopsDesign::new(t, g);
        prop_assert!(design.verify().is_ok());
    }

    /// The stack-Kautz OTIS design realizes its stack-graph and matches the
    /// closed-form hardware inventory for arbitrary small (s, d, k).
    #[test]
    fn stack_kautz_design_random_parameters(s in 1usize..4, d in 2usize..4, k in 1usize..3) {
        let design = StackKautzDesign::new(s, d, k);
        prop_assert!(design.verify().is_ok());
        prop_assert_eq!(design.inventory(), design.expected_inventory());
    }
}
