//! Acceptance tests of the per-worker scratch pool ([`SlotScratch`]),
//! driven through the umbrella crate the way downstream users see it.
//!
//! Three bars are pinned here:
//!
//! 1. **Reuse-vs-fresh byte-identity.**  One pool carried across a
//!    heterogeneous cell sequence — both simulator families, static
//!    faults, a mid-run fault schedule, a wavelength axis — produces
//!    metrics *identical* to giving every run a fresh pool.  Reuse is an
//!    allocation optimization, never a semantic.
//! 2. **The engine actually reuses.**  Each grid worker owns one pool for
//!    its lifetime; [`StreamSummary::scratch_reuses`] is pinned exactly at
//!    one thread (`rows − 1`) and bounded at higher thread counts, on a
//!    mixed grid whose rows are thread-count independent.
//! 3. **High-water-mark non-regression.**  A reused arena hands out
//!    exactly the slots a fresh one would (`arena_capacity()` matches the
//!    fresh run, cell for cell) — reuse never inflates the handle
//!    sequence, and a light run after a heavy one does not regrow the
//!    heavy peak.
//!
//! [`SlotScratch`]: otis_lightwave::sim::SlotScratch
//! [`StreamSummary::scratch_reuses`]: otis_lightwave::net::StreamSummary

use otis_lightwave::net::{
    run_grid, run_grid_streaming, CollectSink, FaultSchedule, FaultSet, Network, NetworkSpec,
    PreparedSim, PreparedTimeline, ScenarioGrid, SimOptions, WavelengthConfig,
};
use otis_lightwave::sim::{SimMetrics, SlotScratch, TrafficPattern};

/// One kernel-level cell: a prepared kernel, an optional fault timeline,
/// and the run-scoped inputs.
struct Cell {
    kernel: PreparedSim,
    timeline: Option<PreparedTimeline>,
    traffic: TrafficPattern,
    options: SimOptions,
}

impl Cell {
    fn run(&self, scratch: &mut SlotScratch) -> SimMetrics {
        self.kernel.run_with_timeline_scratch(
            self.timeline.as_ref(),
            &self.traffic,
            &self.options,
            scratch,
        )
    }
}

/// A heterogeneous cell sequence covering every code path the pool must
/// survive between: hot-potato and multi-OPS kernels, an intact and a
/// faulted network, a mid-run kernel swap, and a wavelength-mode run.
fn mixed_cells() -> Vec<Cell> {
    let db = Network::from_spec("DB(2,5)").unwrap();
    let sk = Network::from_spec("SK(2,2,2)").unwrap();
    let mut faults = FaultSet::new();
    faults.fail_node(1);

    let db_base = db.prepare(&FaultSet::new());
    let sk_base = sk.prepare_with_alternates(&FaultSet::new(), 2);
    let schedule: FaultSchedule = "fail(node 2)@10; recover@60".parse().unwrap();

    let wavelengths2 = WavelengthConfig {
        count: 2,
        ..Default::default()
    };
    vec![
        // Hot-potato, intact, heavy load: the arena high-water mark.
        Cell {
            kernel: db_base.clone(),
            timeline: None,
            traffic: TrafficPattern::Uniform { load: 0.6 },
            options: SimOptions::new(150, 7),
        },
        // Multi-OPS with alternates, statically faulted.
        Cell {
            kernel: sk.prepare_with_alternates(&faults, 2),
            timeline: None,
            traffic: TrafficPattern::Uniform { load: 0.5 },
            options: SimOptions::new(120, 11).with_faults(faults.clone()),
        },
        // Hot-potato under a mid-run fail/recover timeline.
        Cell {
            kernel: db_base.clone(),
            timeline: Some(PreparedSim::timeline(&db_base, &db_base, &schedule, 1).unwrap()),
            traffic: TrafficPattern::Uniform { load: 0.3 },
            options: SimOptions::new(120, 13),
        },
        // Multi-OPS under the same schedule, in wavelength mode.
        Cell {
            kernel: sk_base.clone(),
            timeline: Some(PreparedSim::timeline(&sk_base, &sk_base, &schedule, 2).unwrap()),
            traffic: TrafficPattern::Uniform { load: 0.4 },
            options: SimOptions {
                wavelengths: wavelengths2,
                alt_paths: 2,
                ..SimOptions::new(120, 17)
            },
        },
        // Hot-potato again, light load: must not disturb (or be disturbed
        // by) the state the heavy runs left behind.
        Cell {
            kernel: db_base,
            timeline: None,
            traffic: TrafficPattern::Uniform { load: 0.1 },
            options: SimOptions::new(60, 19),
        },
    ]
}

#[test]
fn reused_scratch_is_byte_identical_to_fresh_across_mixed_cells() {
    let cells = mixed_cells();

    // Reference: every cell on its own fresh pool.
    let fresh: Vec<(SimMetrics, usize)> = cells
        .iter()
        .map(|cell| {
            let mut scratch = SlotScratch::new();
            let metrics = cell.run(&mut scratch);
            (metrics, scratch.arena_capacity())
        })
        .collect();

    // One pool across the whole sequence, twice over — the second pass
    // starts from the dirtiest possible state.
    let mut scratch = SlotScratch::new();
    for pass in 0..2 {
        for (i, cell) in cells.iter().enumerate() {
            let metrics = cell.run(&mut scratch);
            assert_eq!(
                metrics, fresh[i].0,
                "reused scratch diverged from fresh on cell {i} (pass {pass})"
            );
            // The reused arena handed out exactly the slots a fresh one
            // would: reuse keeps allocations, never the handle sequence.
            assert_eq!(
                scratch.arena_capacity(),
                fresh[i].1,
                "arena high-water mark drifted on cell {i} (pass {pass})"
            );
        }
    }

    // The heavy opening cell dominates the light closing cell — the
    // capacity match above really exercises shrink-back, not a constant.
    assert!(
        fresh[0].1 > fresh[4].1,
        "the heavy cell must out-populate the light one ({} vs {})",
        fresh[0].1,
        fresh[4].1
    );
}

/// A grid crossing both families with faults, a schedule and a wavelength
/// axis: 2 specs × 2 loads × 2 seeds × 2 fault sets × 2 schedules × 2
/// wavelength counts = 64 cells.
fn mixed_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "DB(2,5)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut faults = FaultSet::new();
    faults.fail_node(1);
    ScenarioGrid::new(specs)
        .loads(&[0.2, 0.5])
        .seeds(&[7, 11])
        .slots(80)
        .fault_sets(vec![FaultSet::new(), faults])
        .fault_schedules(vec![
            FaultSchedule::empty(),
            "fail(node 2)@10; recover@50".parse().unwrap(),
        ])
        .wavelengths(&[1, 2])
        .alt_paths(2)
}

#[test]
fn engine_reuses_worker_scratch_and_rows_stay_thread_count_independent() {
    let grid = mixed_grid();
    let rows = grid.cell_count();
    assert_eq!(rows, 64);

    let reference = run_grid(&grid, 1).unwrap();
    for threads in [1usize, 2, 64] {
        let mut sink = CollectSink::new();
        let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
        assert_eq!(
            sink.into_rows(),
            reference,
            "rows diverged at {threads} threads"
        );
        assert_eq!(summary.rows, rows);
        if threads == 1 {
            // One worker runs every cell on one pool: all but the first
            // cell are reuses, exactly.
            assert_eq!(summary.scratch_reuses, rows - 1);
        } else {
            // Each worker that ran at least one cell contributes its cell
            // count minus one.
            assert!(
                summary.scratch_reuses >= rows.saturating_sub(threads),
                "{} reuses at {threads} threads",
                summary.scratch_reuses
            );
            assert!(summary.scratch_reuses < rows);
        }
    }
}
