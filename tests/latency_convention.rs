//! Cross-simulator latency convention: a single-hop message costs exactly
//! one slot in both the multi-OPS simulator and the hot-potato baseline, so
//! the comparison tables of experiment T5 measure the same clock.
//!
//! Both scenarios are contention-free by construction, so *every* delivered
//! message is single-hop and the averages must be exactly 1 — including
//! messages injected in the final slot, which the hot-potato simulator used
//! to misreport as in flight.

use otis_lightwave::routing::FaultSet;
use otis_lightwave::sim::{
    HotPotatoSim, HotPotatoSimConfig, MultiOpsSim, MultiOpsSimConfig, TrafficPattern,
};
use otis_lightwave::topologies::{complete_digraph, Pops};

/// Shifted-by-one permutation traffic at full load: deterministic, never
/// self-addressed, and contention-free on both test networks.
fn shift_traffic() -> TrafficPattern {
    TrafficPattern::Permutation {
        load: 1.0,
        offset: 1,
    }
}

#[test]
fn hot_potato_single_hop_costs_one_slot() {
    // K(5): every destination is one hop away and each node forwards at most
    // its own injection, so no deflection can occur.
    let sim = HotPotatoSim::new(
        complete_digraph(5),
        HotPotatoSimConfig {
            slots: 50,
            ..Default::default()
        },
    );
    let m = sim.run(&shift_traffic());
    assert_eq!(m.injected, 5 * 50);
    assert_eq!(m.delivered, m.injected, "all single-hop traffic delivered");
    assert_eq!(m.in_flight, 0);
    assert_eq!(m.dropped, 0);
    assert!((m.average_latency() - 1.0).abs() < 1e-12);
    assert!((m.average_hops() - 1.0).abs() < 1e-12);
    assert_eq!(m.max_latency, 1);
    assert_eq!(m.max_hops, 1);
}

#[test]
fn multi_ops_single_hop_costs_one_slot() {
    // POPS(1,4): four groups of one processor, so processor i's messages to
    // i+1 are alone on coupler (i, i+1) — no arbitration losses ever.
    let pops = Pops::new(1, 4);
    let sim = MultiOpsSim::new(
        pops.stack_graph().clone(),
        MultiOpsSimConfig {
            slots: 50,
            ..Default::default()
        },
    );
    let m = sim.run(&shift_traffic());
    assert_eq!(m.injected, 4 * 50);
    assert_eq!(m.delivered, m.injected, "all single-hop traffic delivered");
    assert_eq!(m.in_flight, 0);
    assert!((m.average_latency() - 1.0).abs() < 1e-12);
    assert!((m.average_hops() - 1.0).abs() < 1e-12);
    assert_eq!(m.max_latency, 1);
    assert_eq!(m.max_hops, 1);
}

#[test]
fn conventions_agree_under_faults_too() {
    // The same contention-free scenarios with an irrelevant fault installed:
    // routing around a fault must not change the clock convention.
    let mut faults = FaultSet::new();
    faults.fail_arc(2, 0); // unused by the shifted permutation
    let hot = HotPotatoSim::with_faults(
        complete_digraph(5),
        HotPotatoSimConfig {
            slots: 30,
            ..Default::default()
        },
        faults,
    );
    let m = hot.run(&shift_traffic());
    assert_eq!(m.delivered, m.injected);
    assert!((m.average_latency() - 1.0).abs() < 1e-12);
}
