//! Acceptance tests of the fault-timeline subsystem, driven through the
//! umbrella crate the way downstream users see it.
//!
//! Three bars are pinned here:
//!
//! 1. **Swap-path equivalence.**  A `fail(...)@t` schedule executed through
//!    the delta-repair timeline produces metrics *identical* to swapping in
//!    a kernel prepared from scratch for the faulted network at slot `t` —
//!    both simulator families, with and without alternate routes.
//! 2. **Legacy byte-identity.**  A grid that declares the schedule axis but
//!    only holds the empty schedule stays on the legacy output path:
//!    byte-identical to the seed goldens at 1, 2, 8 and 64 threads.
//! 3. **Restoration.**  After a scheduled recovery the delivery rate comes
//!    back: `restore_slots` is finite when the network recovers (and the
//!    restoration columns flow end to end through the streaming sinks,
//!    independent of thread count).

use otis_lightwave::net::{
    run_grid, run_grid_streaming, FaultSchedule, FaultSet, JsonLinesSink, Network, NetworkSpec,
    PreparedSim, PreparedTimeline, ScenarioGrid, SimOptions, TableSink,
};
use otis_lightwave::sim::TrafficPattern;

/// Extract the inner hot-potato kernel of a prepared simulator.
fn hot_potato_kernel(prepared: PreparedSim) -> otis_lightwave::sim::PreparedHotPotato {
    match prepared {
        PreparedSim::HotPotato(kernel) => kernel,
        PreparedSim::MultiOps(_) => panic!("expected a hot-potato kernel"),
    }
}

/// Extract the inner multi-OPS kernel of a prepared simulator.
fn multi_ops_kernel(prepared: PreparedSim) -> otis_lightwave::sim::PreparedMultiOps {
    match prepared {
        PreparedSim::MultiOps(kernel) => kernel,
        PreparedSim::HotPotato(_) => panic!("expected a multi-OPS kernel"),
    }
}

#[test]
fn scheduled_swap_matches_from_scratch_kernel_on_db_2_8() {
    // DB(2,8): the schedule's epoch kernel is delta-repaired from the
    // fault-free base.  Swapping in a kernel prepared from scratch for the
    // same fault set at the same slot must give identical metrics — the
    // repair path is an optimization, never a semantic.
    let network = Network::from_spec("DB(2,8)").unwrap();
    let base = network.prepare(&FaultSet::new());
    let schedule: FaultSchedule = "fail(node 3)@32".parse().unwrap();
    let timeline = PreparedSim::timeline(&base, &base, &schedule, 1).unwrap();
    assert_eq!(timeline.len(), 1);

    let mut faults = FaultSet::new();
    faults.fail_node(3);
    let scratch =
        PreparedTimeline::HotPotato(vec![(32, hot_potato_kernel(network.prepare(&faults)))]);

    let traffic = TrafficPattern::Uniform { load: 0.4 };
    let options = SimOptions::new(200, 7);
    let repaired = base.run_with_timeline(&timeline, &traffic, &options);
    let from_scratch = base.run_with_timeline(&scratch, &traffic, &options);
    assert_eq!(
        repaired, from_scratch,
        "delta-repaired swap diverged from the from-scratch kernel"
    );
    assert_eq!(repaired.fault_events, 1);
    assert!(repaired.in_flight_at_failure > 0 || repaired.dropped_by_failure > 0);
}

#[test]
fn scheduled_swap_matches_from_scratch_kernel_on_sk_with_alternates() {
    // The multi-OPS family, with alternate routes prepared: the mid-run
    // swap must agree with a from-scratch fault-aware kernel carrying the
    // same alternates.
    let network = Network::from_spec("SK(2,2,2)").unwrap();
    let base = network.prepare_with_alternates(&FaultSet::new(), 3);
    let schedule: FaultSchedule = "fail(node 1)@20; recover@120".parse().unwrap();
    let timeline = PreparedSim::timeline(&base, &base, &schedule, 3).unwrap();
    assert_eq!(timeline.len(), 2);

    let mut faults = FaultSet::new();
    faults.fail_node(1);
    let scratch = PreparedTimeline::MultiOps(vec![
        (
            20,
            multi_ops_kernel(network.prepare_with_alternates(&faults, 3)),
        ),
        (
            120,
            multi_ops_kernel(network.prepare_with_alternates(&FaultSet::new(), 3)),
        ),
    ]);

    let traffic = TrafficPattern::Uniform { load: 0.5 };
    let options = SimOptions::new(300, 11);
    let repaired = base.run_with_timeline(&timeline, &traffic, &options);
    let from_scratch = base.run_with_timeline(&scratch, &traffic, &options);
    assert_eq!(
        repaired, from_scratch,
        "delta-repaired swap diverged from the from-scratch kernels"
    );
    assert_eq!(repaired.fault_events, 2);
}

/// The exact grid the golden files were generated from (see
/// `tests/wavelength_layer.rs`), with the schedule axis *explicitly* set to
/// its single static entry.
fn golden_grid_with_static_schedule() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "POPS(3,4)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    ScenarioGrid::new(specs)
        .loads(&[0.2, 0.6])
        .seeds(&[7, 11])
        .slots(120)
        .fault_schedules(vec!["none".parse().unwrap()])
}

#[test]
fn static_schedule_grids_stream_bytes_identical_to_the_seed_goldens() {
    // Declaring the axis with only the empty schedule must not flip the
    // sinks onto the restoration tier: the bytes are the seed's bytes, at
    // every thread count.
    let grid = golden_grid_with_static_schedule();
    assert!(
        !grid.fault_schedule_enabled(),
        "a lone empty schedule must stay on the legacy output path"
    );
    for threads in [1, 2, 8, 64] {
        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut table).unwrap();
        assert_eq!(
            String::from_utf8(table.into_inner()).unwrap(),
            include_str!("golden/grid_small.table"),
            "table output drifted from the seed golden at {threads} threads"
        );
    }
}

#[test]
fn recovery_restores_delivery_and_streams_restoration_columns() {
    // A coupler failure mid-run with alternates prepared: the network keeps
    // delivering, and once the failed group recovers the per-slot delivery
    // rate climbs back over the restoration threshold, so `restore_slots`
    // is finite.  The whole story flows through the streaming engine — the
    // restoration columns appear in the JSONL rows, identically at every
    // thread count.
    let specs: Vec<NetworkSpec> = vec!["SK(2,2,2)".parse().unwrap()];
    let schedules: Vec<FaultSchedule> = ["none", "fail(node 1)@100; recover@220"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let grid = ScenarioGrid::new(specs)
        .loads(&[0.9])
        .seeds(&[7])
        .slots(600)
        .alt_paths(3)
        .fault_schedules(schedules);
    assert!(grid.fault_schedule_enabled());

    let rows = run_grid(&grid, 2).unwrap();
    assert_eq!(rows.len(), 2);
    let static_row = &rows[0];
    let scheduled = &rows[1];
    assert_eq!(static_row.metrics.fault_events, 0);
    assert_eq!(scheduled.metrics.fault_events, 2);
    assert!(
        scheduled.metrics.restore_slots < u64::MAX,
        "the recovered network never climbed back to the pre-failure rate"
    );
    assert!(scheduled.metrics.in_flight_at_failure > 0);
    assert!(scheduled.metrics.delivered > 0);

    let mut reference: Option<String> = None;
    for threads in [1, 2, 8, 64] {
        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, threads, &mut jsonl).unwrap();
        let output = String::from_utf8(jsonl.into_inner()).unwrap();
        let mut lines = output.lines();
        let static_line = lines.next().unwrap();
        let scheduled_line = lines.next().unwrap();
        assert!(static_line.contains("\"fault_schedule\":\"none\""));
        assert!(static_line.contains("\"restore_slots\":null"));
        assert!(scheduled_line.contains("\"fault_schedule\":\"fail(node 1)@100; recover@220\""));
        assert!(scheduled_line.contains("\"fault_events\":2"));
        assert!(!scheduled_line.contains("\"restore_slots\":null"));
        match &reference {
            None => reference = Some(output),
            Some(expected) => assert_eq!(
                &output, expected,
                "restoration output drifted at {threads} threads"
            ),
        }
    }
}
