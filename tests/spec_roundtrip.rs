//! Facade acceptance tests: every supported spec family parses, round-trips
//! through `Display`, builds, verifies, and reports the node/link counts the
//! paper's closed forms predict.

use otis_lightwave::net::{Network, NetworkSpec, RouteOracle, SimOptions};

/// One spec per family, with the closed-form processor and link/coupler
/// counts from the paper: `SK(6,3,2)` → 72 processors and 48 couplers
/// (Fig. 7), `POPS(9,8)` → 72 processors and 64 couplers (§2.4),
/// `KG(3,4)` → 108 nodes of degree 3 (§2.5), and so on.
const FAMILIES: &[(&str, usize, usize)] = &[
    ("K(5)", 5, 20),
    ("DB(2,8)", 256, 512),
    ("KG(3,4)", 108, 324),
    ("II(4,12)", 12, 48),
    ("POPS(9,8)", 72, 64),
    ("SK(6,3,2)", 72, 48),
    ("SII(2,3,12)", 24, 48),
];

#[test]
fn spec_roundtrip_all_families() {
    for &(text, nodes, links) in FAMILIES {
        // Parse and round-trip through Display.
        let spec: NetworkSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(spec.to_string(), text, "canonical rendering of {text}");
        assert_eq!(spec.to_string().parse::<NetworkSpec>().unwrap(), spec);

        // Build through the facade and check the closed forms.
        let network = Network::from_spec(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(network.node_count(), nodes, "{text} node count");
        assert_eq!(network.link_count(), links, "{text} link count");
        let summary = network.summary();
        assert_eq!(summary.nodes, nodes, "{text} summary nodes");
        assert_eq!(summary.links, links, "{text} summary links");
        assert!(summary.diameter_matches_prediction(), "{text} diameter");

        // Verification succeeds for every family: optical designs verify by
        // signal tracing, design-less families verify structurally.
        let report = network.verify().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(report.processors, nodes, "{text} verified processors");

        // The closed forms on the spec itself agree with the built network.
        assert_eq!(
            spec.node_count(),
            Some(nodes),
            "{text} spec node closed form"
        );
        if let Some(closed_links) = spec.link_count() {
            assert_eq!(closed_links, links, "{text} spec link closed form");
        }
    }
}

#[test]
fn sk_6_3_2_matches_fig7_via_facade() {
    // The paper's worked example, end to end.
    let sk = Network::from_spec("SK(6,3,2)").unwrap();
    let report = sk.verify().unwrap();
    assert_eq!(report.processors, 72);
    assert_eq!(report.links, 48);
    let stack = sk.topology().stack_graph().unwrap();
    assert_eq!(stack.group_count(), 12);
    assert_eq!(stack.stacking_factor(), 6);
    assert_eq!(sk.summary().diameter, Some(2));
    // Fig. 12 hardware matches the closed-form inventory.
    assert_eq!(
        sk.design().unwrap().inventory(),
        sk.predicted_inventory().unwrap()
    );
}

#[test]
fn routers_cover_every_family() {
    for &(text, nodes, _) in FAMILIES {
        let network = Network::from_spec(text).unwrap();
        let router: Box<dyn RouteOracle> = network.router();
        assert_eq!(router.node_count(), nodes, "{text}");
        // Spot-check routes from a few sources to a few destinations.
        for src in [0, nodes / 2] {
            for dst in [0, nodes - 1] {
                let route = router
                    .route(src, dst)
                    .unwrap_or_else(|| panic!("{text}: no route {src}->{dst}"));
                let path = route.nodes();
                assert_eq!(path.first(), Some(&src), "{text} {src}->{dst}");
                assert_eq!(path.last(), Some(&dst), "{text} {src}->{dst}");
            }
        }
    }
}

#[test]
fn simulation_covers_every_family() {
    let options = SimOptions::new(120, 9);
    for &(text, _, _) in FAMILIES {
        let network = Network::from_spec(text).unwrap();
        let metrics = network.simulate_uniform(0.2, &options);
        assert_eq!(
            metrics.injected,
            metrics.delivered + metrics.in_flight + metrics.dropped,
            "{text} conservation"
        );
        assert!(metrics.delivered > 0, "{text} delivered nothing");
    }
}
