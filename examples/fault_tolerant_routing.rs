//! Fault-tolerant routing on the Kautz quotient (§2.5 of the paper):
//! with up to d − 1 failed nodes, a route of length at most k + 2 survives.
//!
//! The graph under test comes from the `Network` facade; the fault machinery
//! is the `routing` layer working on it directly.
//!
//! ```text
//! cargo run --example fault_tolerant_routing
//! ```

use otis_lightwave::net::Network;
use otis_lightwave::routing::fault_tolerant::validate_kautz_fault_bound;
use otis_lightwave::routing::{fault_tolerant_route, FaultSet};

fn main() {
    let (d, k) = (3usize, 2usize);
    let network = Network::from_spec("KG(3,2)").expect("valid spec");
    let g = network.topology().digraph().expect("KG is point-to-point");
    println!(
        "{}: {} nodes, degree {d}, diameter {k}",
        network.name(),
        g.node_count()
    );

    // A concrete scenario: fail two nodes (d - 1 = 2) and route around them.
    let mut faults = FaultSet::new();
    faults.fail_node(4);
    faults.fail_node(9);
    println!("failed nodes: 4 and 9");
    for (src, dst) in [(0usize, 5usize), (2, 11), (7, 3)] {
        match fault_tolerant_route(g, src, dst, &faults) {
            Some(path) => println!(
                "  {src} -> {dst}: {} hops via {:?} (bound k+2 = {})",
                path.len() - 1,
                path,
                k + 2
            ),
            None => println!("  {src} -> {dst}: disconnected (should not happen with < d faults)"),
        }
    }

    // The systematic check behind experiment T4: every source/destination
    // pair under every 2-node fault pattern.
    let mut patterns = Vec::new();
    for a in 0..g.node_count() {
        for b in (a + 1)..g.node_count() {
            patterns.push(vec![a, b]);
        }
    }
    let report = validate_kautz_fault_bound(g, d, k, &patterns);
    println!(
        "exhaustive check: {} cases, worst surviving route {} hops (bound {}), disconnected {} -> claim holds: {}",
        report.cases, report.worst_length, report.bound, report.disconnected, report.holds()
    );
}
