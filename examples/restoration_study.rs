//! Restoration study of the fault-timeline subsystem: what does a single
//! coupler failure mid-run cost the paper's multi-hop stack-Kautz design
//! `SK(6,3,2)` and the single-OPS de Bruijn baseline `DB(2,8)`, and how
//! much of that cost do prepared alternate routes buy back?
//!
//! The scenario engine sweeps fault schedules as a first-class grid axis:
//! the same traffic (same seed, same pattern) runs once on the intact
//! network and once against the timeline `fail(node 3)@300; recover@500`,
//! which delta-repairs the routing kernel at slot 300, strands the
//! in-flight messages the dead coupler held, and swaps the fault-free
//! kernel back in at slot 500.  The restoration columns then tell the
//! story: how many flights the failure caught, how many it killed, how
//! long the network took to climb back to 95% of its pre-failure delivery
//! rate, and the worst latency the outage produced.
//!
//! ```text
//! cargo run --release --example restoration_study
//! ```

use otis_lightwave::net::{
    default_thread_count, run_grid, FaultSchedule, NetworkSpec, ScenarioGrid, ScenarioRow,
};

const SPECS: [&str; 2] = ["SK(6,3,2)", "DB(2,8)"];
const SCHEDULE: &str = "fail(node 3)@300; recover@500";

/// Formats a slot count that may be the "never restored" sentinel.
fn restore_cell(slots: u64) -> String {
    if slots == u64::MAX {
        format!("{:>8}", "never")
    } else {
        format!("{slots:>8}")
    }
}

/// Runs the two-spec grid at the given alternate-route budget and returns
/// `(static, scheduled)` rows per spec, in spec order.
fn study(alt_paths: usize) -> Vec<(ScenarioRow, ScenarioRow)> {
    let specs: Vec<NetworkSpec> = SPECS.iter().map(|s| s.parse().unwrap()).collect();
    let schedules: Vec<FaultSchedule> = ["none", SCHEDULE]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let grid = ScenarioGrid::new(specs)
        .loads(&[0.7])
        .seeds(&[2026])
        .slots(900)
        .alt_paths(alt_paths)
        .fault_schedules(schedules);
    let mut rows = run_grid(&grid, default_thread_count())
        .expect("the grid is valid")
        .into_iter();
    // Grid order: schedule is outer, spec is inner — the first two rows are
    // the static runs, the next two the scheduled ones.
    let static_rows: Vec<ScenarioRow> = rows.by_ref().take(SPECS.len()).collect();
    let scheduled: Vec<ScenarioRow> = rows.collect();
    static_rows.into_iter().zip(scheduled).collect()
}

fn main() {
    println!("Single coupler failure mid-run: {SCHEDULE}, uniform(0.7), 900 slots.");
    println!("Fault id 3 names a quotient group (an OPS coupler) on SK(6,3,2) and a");
    println!("processor on DB(2,8); the kernel is delta-repaired at each event slot.");

    for alt_paths in [1usize, 3] {
        println!();
        if alt_paths == 1 {
            println!("Primary routes only (alt_paths = 1):");
        } else {
            println!("With prepared alternates (alt_paths = {alt_paths}, multi-OPS only):");
        }
        println!(
            "  {:>9}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>9}",
            "spec", "delivered", "inflight", "faildrop", "restore", "peak_lat", "vs intact"
        );
        for (intact, faulted) in study(alt_paths) {
            let m = &faulted.metrics;
            println!(
                "  {:>9}  {:>9}  {:>8}  {:>8}  {}  {:>8}  {:>8.2}%",
                faulted.spec.to_string(),
                m.delivered,
                m.in_flight_at_failure,
                m.dropped_by_failure,
                restore_cell(m.restore_slots),
                m.post_failure_latency_peak,
                100.0 * m.delivered as f64 / intact.metrics.delivered as f64,
            );
        }
    }

    println!();
    println!("Reading the table:");
    println!("  - the failure catches every message the dead coupler held or was about");
    println!("    to serve (`inflight`); the ones no surviving route can rescue are");
    println!("    stranded (`faildrop`), counted apart from congestion drops;");
    println!("  - `restore` is how many slots after the recovery event the per-slot");
    println!("    delivery rate climbed back to 95% of its pre-failure baseline;");
    println!("  - DB(2,8) routes around the dead processor by deflection alone, so its");
    println!("    alternate-route column is identical in both tables — the knob only");
    println!("    changes the multi-OPS stack-Kautz network, where prepared alternates");
    println!("    keep traffic moving through the outage and speed up restoration.");
}
