//! Quickstart: build the paper's worked example from a spec string, verify
//! it optically, and route on it — all through the `Network` facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use otis_lightwave::net::Network;

fn main() {
    // 1. The whole network behind one spec string: the stack-Kautz network
    //    SK(6,3,2) of Fig. 7.
    let sk = Network::from_spec("SK(6,3,2)").expect("valid spec");
    let stack = sk.topology().stack_graph().expect("SK is multi-OPS");
    println!(
        "{}: {} processors in {} groups of {}, {} OPS couplers, diameter {:?}",
        sk.name(),
        sk.node_count(),
        stack.group_count(),
        stack.stacking_factor(),
        sk.link_count(),
        sk.summary().diameter
    );

    // 2. The optical design of Fig. 12, and its end-to-end verification by
    //    signal tracing.
    let report = sk.verify().expect("the OTIS design realizes SK(6,3,2)");
    println!("optical design verified: {report}");
    println!(
        "hardware inventory:\n{}",
        sk.design().expect("SK has an OTIS design").inventory()
    );

    // 3. Corollary 1: a Kautz graph on a single OTIS — same facade, another
    //    spec string.
    let kautz = Network::from_spec("KG(3,2)").expect("valid spec");
    kautz.verify().expect("Corollary 1 holds for KG(3,2)");
    println!(
        "KG(3,2) realized by one OTIS(3,{}) — {} lenses in total",
        kautz.node_count(),
        kautz
            .design()
            .expect("KG has an OTIS design")
            .inventory()
            .lens_count()
    );

    // 4. Routing: the network inherits shortest-path routing from the Kautz
    //    quotient.
    let router = sk.router();
    use otis_lightwave::graphs::StackNode;
    let src = stack.to_flat(StackNode::new(0, 0)); // (group 0, index 0)
    let dst = stack.to_flat(StackNode::new(3, 7)); // (group 7, index 3)
    let route = router.route(src, dst).expect("strongly connected");
    println!(
        "route from processor (group 0, index 0) to (group 7, index 3): {} optical hops",
        route.hop_count()
    );
    for (i, node) in route.nodes().iter().enumerate().skip(1) {
        let sn = stack.to_stack_node(*node);
        println!(
            "  hop {}: -> processor (group {}, index {})",
            i, sn.group, sn.index
        );
    }
}
