//! Quickstart: build the paper's worked example, verify it, and route on it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use otis_lightwave::designs::{KautzDesign, StackKautzDesign};
use otis_lightwave::routing::StackRouter;
use otis_lightwave::topologies::StackKautz;

fn main() {
    // 1. The graph-level object: the stack-Kautz network SK(6,3,2) of Fig. 7.
    let sk = StackKautz::new(6, 3, 2);
    println!(
        "SK(6,3,2): {} processors in {} groups of {}, degree {}, {} OPS couplers, diameter {:?}",
        sk.node_count(),
        sk.group_count(),
        sk.stacking_factor(),
        sk.node_degree(),
        sk.coupler_count(),
        sk.diameter()
    );

    // 2. The optical design of Fig. 12, and its end-to-end verification by
    //    signal tracing.
    let design = StackKautzDesign::new(6, 3, 2);
    let report = design.verify().expect("the OTIS design realizes SK(6,3,2)");
    println!("optical design verified: {report}");
    println!("hardware inventory:\n{}", design.inventory());

    // 3. Corollary 1: a Kautz graph on a single OTIS.
    let kautz = KautzDesign::new(3, 2);
    kautz.verify().expect("Corollary 1 holds for KG(3,2)");
    println!(
        "KG(3,2) realized by one OTIS(3,{}) — {} lenses in total",
        kautz.node_count(),
        kautz.inventory().lens_count()
    );

    // 4. Routing: the network inherits shortest-path routing from the Kautz
    //    quotient.
    let router = StackRouter::new(sk.stack_graph().clone());
    let src = sk.processor(0, 0);
    let dst = sk.processor(7, 3);
    let route = router.route(src, dst).expect("strongly connected");
    println!(
        "route from processor (group 0, index 0) to (group 7, index 3): {} optical hops",
        route.len()
    );
    for (i, hop) in route.hops.iter().enumerate() {
        let (group, index) = sk.processor_label(hop.receiver);
        println!("  hop {}: coupler {} -> processor (group {group}, index {index})", i + 1, hop.coupler);
    }
}
