//! Design-space exploration: how much optical hardware does each network
//! need as the machine grows?
//!
//! The paper's §4/§5 argue that OTIS-based multi-OPS designs scale well in
//! discrete optical parts.  This example sweeps machine sizes and prints, for
//! the POPS and stack-Kautz designs of comparable processor counts, the
//! coupler / OTIS / lens / transceiver budget and the worst-case optical loss
//! along with whether the link still closes with the default power budget.
//!
//! ```text
//! cargo run --example design_explorer
//! ```

use otis_lightwave::designs::{PopsDesign, StackKautzDesign};
use otis_lightwave::optics::PowerBudget;
use otis_lightwave::topologies::kautz_node_count;

fn main() {
    println!(
        "{:<14} {:>7} {:>9} {:>6} {:>8} {:>9} {:>10} {:>8}",
        "design", "procs", "couplers", "OTIS", "lenses", "tx+rx", "loss (dB)", "closes?"
    );

    // POPS designs: groups of 8 processors, growing group counts.
    for g in [2usize, 4, 8, 12] {
        let design = PopsDesign::new(8, g);
        design.verify().expect("POPS design verifies");
        report(&format!("POPS(8,{g})"), 8 * g, &design.inventory(), design.design().worst_case_loss_db());
    }

    // Stack-Kautz designs: same group size, Kautz group counts.
    for (d, k) in [(2usize, 2usize), (3, 2), (2, 3), (4, 2)] {
        let s = 8;
        let design = StackKautzDesign::new(s, d, k);
        design.verify().expect("stack-Kautz design verifies");
        report(
            &format!("SK({s},{d},{k})"),
            s * kautz_node_count(d, k),
            &design.inventory(),
            design.design().worst_case_loss_db(),
        );
    }

    println!();
    println!(
        "Note how the POPS coupler count grows with g² while the stack-Kautz grows with g·(d+1);"
    );
    println!("the price is the multi-hop diameter k instead of the POPS single hop.");
}

fn report(name: &str, processors: usize, inv: &otis_lightwave::optics::HardwareInventory, loss: f64) {
    let budget = PowerBudget::with_path_loss(loss);
    println!(
        "{:<14} {:>7} {:>9} {:>6} {:>8} {:>9} {:>10.2} {:>8}",
        name,
        processors,
        inv.multiplexer_count(),
        inv.otis_units(),
        inv.lens_count(),
        inv.transmitter_count() + inv.receiver_count(),
        loss,
        budget.is_feasible()
    );
}
