//! Design-space exploration: how much optical hardware does each network
//! need as the machine grows?
//!
//! The paper's §4/§5 argue that OTIS-based multi-OPS designs scale well in
//! discrete optical parts.  This example sweeps machine sizes — a list of
//! spec strings, thanks to the `Network` facade — and prints, for the POPS
//! and stack-Kautz designs of comparable processor counts, the coupler /
//! OTIS / lens / transceiver budget and the worst-case optical loss along
//! with whether the link still closes with the default power budget.
//!
//! ```text
//! cargo run --example design_explorer
//! ```

use otis_lightwave::net::Network;
use otis_lightwave::optics::PowerBudget;

fn main() {
    println!(
        "{:<14} {:>7} {:>9} {:>6} {:>8} {:>9} {:>10} {:>8}",
        "design", "procs", "couplers", "OTIS", "lenses", "tx+rx", "loss (dB)", "closes?"
    );

    // POPS designs with groups of 8 processors, then stack-Kautz designs
    // with the same group size at Kautz group counts.
    let specs = [
        "POPS(8,2)",
        "POPS(8,4)",
        "POPS(8,8)",
        "POPS(8,12)",
        "SK(8,2,2)",
        "SK(8,3,2)",
        "SK(8,2,3)",
        "SK(8,4,2)",
    ];
    for spec in specs {
        let network = Network::from_spec(spec).expect("valid spec");
        network.verify().expect("design verifies");
        let design = network.design().expect("these families have designs");
        let inv = design.inventory();
        let loss = design.worst_case_loss_db();
        let budget = PowerBudget::with_path_loss(loss);
        println!(
            "{:<14} {:>7} {:>9} {:>6} {:>8} {:>9} {:>10.2} {:>8}",
            network.name(),
            network.node_count(),
            inv.multiplexer_count(),
            inv.otis_units(),
            inv.lens_count(),
            inv.transmitter_count() + inv.receiver_count(),
            loss,
            budget.is_feasible()
        );
    }

    println!();
    println!(
        "Note how the POPS coupler count grows with g² while the stack-Kautz grows with g·(d+1);"
    );
    println!("the price is the multi-hop diameter k instead of the POPS single hop.");
}
