//! Burstiness study of the demand subsystem: what does traffic *shape* cost
//! when the mean rate is held fixed?
//!
//! The paper's throughput/latency comparisons (§2.4–2.5) drive the networks
//! with stationary patterns — every slot looks like every other.  Real
//! demand is bursty: sources alternate between silent stretches and dense
//! trains of back-to-back injections.  This study runs the paper's
//! multi-hop stack-Kautz design `SK(6,3,2)` and the single-OPS de Bruijn
//! baseline `DB(2,8)` under two demand processes with the *same* expected
//! injections per processor per slot:
//!
//! * `poisson(r)` — memoryless arrivals, the smoothest possible demand;
//! * `onoff(r', 16, 48)` — each source cycles through a 16-slot burst and a
//!   48-slot silence, with `r'` chosen so the per-slot mean matches the
//!   Poisson run exactly (the burst-phase rate is ~4x hotter).
//!
//! Matched means isolate burstiness itself: any throughput or latency gap
//! between the two columns is the price of demand concentration, not of
//! extra load.
//!
//! ```text
//! cargo run --release --example burst_study
//! ```

use otis_lightwave::net::{
    default_thread_count, run_grid, NetworkSpec, ScenarioGrid, ScenarioRow, TrafficSpec,
};
use otis_lightwave::sim::matched_burst_rate;

const SPECS: [&str; 2] = ["SK(6,3,2)", "DB(2,8)"];
const MEAN_RATE: f64 = 0.25;
const BURST_LEN: u64 = 16;
const IDLE_LEN: u64 = 48;

fn main() {
    let poisson = TrafficSpec::Poisson {
        rate: MEAN_RATE,
        dst: None,
    };
    // The library's calibration helper computes the burst-phase rate whose
    // long-run mean matches `poisson(MEAN_RATE)` exactly; rounding keeps
    // the spec string readable, and the means then still match to ~1e-5 —
    // far below what 1600 slots can resolve.
    let on_rate = (matched_burst_rate(MEAN_RATE, BURST_LEN, IDLE_LEN) * 1e4).round() / 1e4;
    let onoff = TrafficSpec::OnOff {
        rate: on_rate,
        burst_len: BURST_LEN,
        idle_len: IDLE_LEN,
    };
    assert!(
        (poisson.offered_load() - onoff.offered_load()).abs() < 1e-4,
        "the two processes must offer the same mean load"
    );

    let specs: Vec<NetworkSpec> = SPECS.iter().map(|s| s.parse().unwrap()).collect();
    let grid = ScenarioGrid::new(specs)
        .workloads(vec![poisson.clone(), onoff.clone()])
        .seeds(&[2026])
        .slots(1600);
    let rows = run_grid(&grid, default_thread_count()).expect("the grid is valid");

    println!(
        "Burstiness at matched mean rate: {poisson} vs {onoff}\n\
         (both offer {:.4} messages/processor/slot; the on/off source is\n\
         ~{:.1}x hotter during its {BURST_LEN}-slot bursts, silent for {IDLE_LEN})\n",
        poisson.offered_load(),
        (BURST_LEN + IDLE_LEN) as f64 / BURST_LEN as f64,
    );
    println!(
        "  {:>9}  {:<20}  {:>9}  {:>9}  {:>8}  {:>8}",
        "spec", "demand", "delivered", "thruput", "latency", "maxhops"
    );
    // Grid order: workload is outer, spec is inner.
    for row in &rows {
        print_row(row);
    }

    let price = |spec: usize| {
        let smooth = rows[spec].metrics.throughput();
        let bursty = rows[SPECS.len() + spec].metrics.throughput();
        100.0 * (smooth - bursty) / smooth
    };
    println!();
    for (i, spec) in SPECS.iter().enumerate() {
        println!(
            "  {spec}: bursts cost {:.2}% of smooth-demand throughput",
            price(i)
        );
    }
}

fn print_row(row: &ScenarioRow) {
    let m = &row.metrics;
    println!(
        "  {:>9}  {:<20}  {:>9}  {:>9.4}  {:>8.2}  {:>8}",
        row.spec.to_string(),
        row.traffic.to_string(),
        m.delivered,
        m.throughput(),
        m.average_latency(),
        m.max_hops,
    );
}
