//! Blocking-ratio study of the wavelength/resource layer: how much traffic
//! do the paper's two 72-processor multi-OPS designs — the multi-hop
//! stack-Kautz `SK(6,3,2)` and the single-hop `POPS(9,8)` — lose to busy
//! couplers, and how fast does wavelength multiplexing buy that loss back?
//!
//! The scenario engine sweeps the wavelength count as a first-class grid
//! axis, so the whole study is one `ScenarioGrid`: for every
//! `(load, wavelength count)` cell the simulator injects the same traffic
//! (same seed, same pattern) and reports what fraction of it was blocked,
//! how busy the spectrum was, and — combining the optical parts inventory
//! with the delivered volume — what each delivered bit costs in hardware.
//!
//! ```text
//! cargo run --release --example blocking_study
//! ```
//!
//! The companion config `examples/wavelength_sweep.scn` runs the same sweep
//! through the `scenarios` CLI and streams it as CSV.

use otis_lightwave::net::{default_thread_count, run_grid, NetworkSpec, ScenarioGrid, ScenarioRow};

/// Formats a possibly-undefined statistic for a fixed-width table cell.
fn cell(value: f64) -> String {
    if value.is_finite() {
        format!("{value:>8.4}")
    } else {
        format!("{:>8}", "-")
    }
}

fn main() {
    let specs = ["SK(6,3,2)", "POPS(9,8)"];
    let loads = [0.2, 0.5, 0.8];
    let wavelengths = [1usize, 2, 4, 8];

    let parsed: Vec<NetworkSpec> = specs.iter().map(|s| s.parse().unwrap()).collect();
    let grid = ScenarioGrid::new(parsed)
        .loads(&loads)
        .seeds(&[2026])
        .slots(800)
        .wavelengths(&wavelengths)
        .alt_paths(2);
    let rows = run_grid(&grid, default_thread_count()).expect("the grid is valid");

    // Index the rows by their grid coordinates.  The wavelength axis is
    // outermost, then workloads, then specs (one seed, one fault set here).
    let row_at = |w_index: usize, load_index: usize, spec_index: usize| -> &ScenarioRow {
        &rows[(w_index * loads.len() + load_index) * specs.len() + spec_index]
    };

    println!("Blocking under capacity contention, 800 slots, 2 routes tried per hop.");
    println!("Even the W=1 column accounts blocking here: alternate routing keeps the");
    println!("wavelength-aware kernel active at every capacity in this grid.");
    for (spec_index, spec) in specs.iter().enumerate() {
        println!();
        println!("{spec} — blocking ratio (blocked / injected):");
        print!("  {:>6}", "load");
        for w in wavelengths {
            print!("  {:>8}", format!("W={w}"));
        }
        println!();
        for (load_index, load) in loads.iter().enumerate() {
            print!("  {load:>6.2}");
            for w_index in 0..wavelengths.len() {
                let row = row_at(w_index, load_index, spec_index);
                print!("  {}", cell(row.metrics.blocking_ratio()));
            }
            println!();
        }
    }

    // The composite economics column: parts inventory over delivered volume.
    // More wavelengths always deliver at least as much traffic, so the cost
    // per delivered bit falls monotonically — until the network is no longer
    // capacity-limited and extra wavelengths stop paying for themselves.
    println!();
    println!("Hardware cost per delivered bit (optical parts / delivered messages):");
    print!("  {:>9}  {:>6}", "spec", "load");
    for w in wavelengths {
        print!("  {:>8}", format!("W={w}"));
    }
    println!();
    for (spec_index, spec) in specs.iter().enumerate() {
        for (load_index, load) in loads.iter().enumerate() {
            print!("  {spec:>9}  {load:>6.2}");
            for w_index in 0..wavelengths.len() {
                let row = row_at(w_index, load_index, spec_index);
                print!("  {}", cell(row.cost_per_delivered_bit()));
            }
            println!();
        }
    }

    println!();
    println!("Reading the tables:");
    println!("  - SK(6,3,2) pays for its multi-hop routes under contention: every packet");
    println!("    re-competes for a coupler at each of its k hops, so blocking is severe");
    println!("    at W=1 and each doubling of the wavelength budget buys a lot back;");
    println!("  - POPS(9,8) is single-hop, so a packet contends exactly once and a small");
    println!("    wavelength budget (W=2) already makes blocking negligible;");
    println!("  - cost per delivered bit falls with W while blocking dominates, then");
    println!("    flattens once the injection rate, not the spectrum, is the limit.");
}
