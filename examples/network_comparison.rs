//! Head-to-head simulation of the three network styles the paper discusses:
//! the single-hop multi-OPS POPS, the multi-hop multi-OPS stack-Kautz, and a
//! single-OPS point-to-point de Bruijn network with hot-potato routing.
//!
//! With the `Network` facade the scenario is *data*: edit the spec list or
//! the load list below and the whole comparison follows.
//!
//! ```text
//! cargo run --release --example network_comparison
//! ```

use otis_lightwave::net::{compare_spec_strs, ComparisonRow};

fn main() {
    // Size-matched trio: 24 processors each (DB(2,5) has 32, the closest
    // power of two), equal degree between SK and DB.
    let specs = ["SK(4,2,2)", "POPS(4,6)", "DB(2,5)"];
    let loads = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    println!("Uniform traffic, 2000 slots per point, OldestFirst arbitration.");
    println!("{}", ComparisonRow::table_header());
    let rows = compare_spec_strs(&specs, &loads, 2000, 2024).expect("specs are valid");
    for row in rows {
        println!("{}", row.as_table_row());
    }
    println!();
    println!("Reading the table:");
    println!("  - POPS keeps ~1 hop / ~1 slot latency at light load but its accepted throughput");
    println!("    flattens once its g² couplers saturate;");
    println!("  - the stack-Kautz pays up to k hops but keeps accepting traffic longer because");
    println!("    each processor contends on fewer, less-shared couplers;");
    println!("  - the hot-potato single-OPS baseline inflates hop counts (deflections) as load");
    println!("    grows, which is exactly the behaviour the multi-OPS designs avoid.");
}
