//! Head-to-head simulation of the three network styles the paper discusses:
//! the single-hop multi-OPS POPS, the multi-hop multi-OPS stack-Kautz, and a
//! single-OPS point-to-point de Bruijn network with hot-potato routing.
//!
//! With the `Network` facade the scenario is *data*: edit the spec list or
//! the load list below and the whole comparison follows.  Execution runs on
//! the parallel scenario engine (`otis_net::engine`), which also powers the
//! load/latency frontier scan and the fault-injection sweep shown after the
//! main table — results are identical at any worker-thread count.
//!
//! ```text
//! cargo run --release --example network_comparison
//! ```

use otis_lightwave::net::{
    compare_spec_strs, default_thread_count, frontier_scan, run_grid, run_grid_streaming,
    saturation_point, ComparisonRow, FaultSet, JsonLinesSink, NetworkSpec, ScenarioGrid,
    ScenarioRow, TrafficSpec,
};

fn main() {
    // Size-matched trio: 24 processors each (DB(2,5) has 32, the closest
    // power of two), equal degree between SK and DB.
    let specs = ["SK(4,2,2)", "POPS(4,6)", "DB(2,5)"];
    let loads = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    println!("Uniform traffic, 2000 slots per point, OldestFirst arbitration.");
    println!("{}", ComparisonRow::table_header());
    let rows = compare_spec_strs(&specs, &loads, 2000, 2024).expect("specs are valid");
    for row in rows {
        println!("{}", row.as_table_row());
    }
    println!();
    println!("Reading the table:");
    println!("  - POPS keeps ~1 hop / ~1 slot latency at light load but its accepted throughput");
    println!("    flattens once its g² couplers saturate;");
    println!("  - the stack-Kautz pays up to k hops but keeps accepting traffic longer because");
    println!("    each processor contends on fewer, less-shared couplers;");
    println!("  - the hot-potato single-OPS baseline inflates hop counts (deflections) as load");
    println!("    grows, which is exactly the behaviour the multi-OPS designs avoid.");

    // The same engine traces each network's load/latency frontier and finds
    // where it saturates (first point within 95% of peak throughput).
    let parsed: Vec<NetworkSpec> = specs.iter().map(|s| s.parse().unwrap()).collect();
    let points = frontier_scan(&parsed, &loads, 2000, 2024).expect("specs are valid");
    println!();
    println!("Load/latency frontier (saturation = first point within 95% of peak throughput,");
    println!("confirmed by at least one probe beyond it):");
    for (i, spec) in parsed.iter().enumerate() {
        let frontier = &points[i * loads.len()..(i + 1) * loads.len()];
        match saturation_point(frontier) {
            Some(sat) => println!(
                "  {spec}: saturates near load {:.2} at throughput {:.4} ({:.2} slots latency)",
                sat.offered_load, sat.throughput, sat.average_latency
            ),
            // POPS(4,6) lands here: its throughput is still climbing at the
            // last probed load, so the scan has no plateau evidence — the
            // honest answer, rather than blaming the end of the probe range.
            None => println!(
                "  {spec}: still climbing at load {:.2} — no saturation within the probed range",
                loads.last().copied().unwrap_or(f64::NAN)
            ),
        }
    }

    // Fault-injection sweep (§2.5 at system level): fail one quotient group
    // of the stack-Kautz — within its d − 1 survivability bound — and watch
    // the network route around it while delivered paths stay <= k + 2 hops.
    let grid = ScenarioGrid::new(vec!["SK(4,2,2)".parse().unwrap()])
        .loads(&[0.2])
        .seeds(&[2024])
        .fault_sets(vec![FaultSet::new(), FaultSet::from_nodes([0])])
        .slots(2000);
    let rows = run_grid(&grid, default_thread_count()).expect("specs are valid");
    println!();
    println!("Fault sweep on SK(4,2,2) (group 0 failed vs intact, bound k+2 = 4):");
    println!("{}", ScenarioRow::table_header());
    for row in &rows {
        println!("{}", row.as_table_row());
    }

    // The workload axis is first-class: adversarial demand matrices sweep
    // exactly like loads.  DB(2,5) has 32 = 2^5 processors, so bit-reversal
    // — the classic worst case for shuffle-like networks — binds to it.
    let workloads: Vec<TrafficSpec> = ["uniform(0.5)", "perm(0.5,7)", "bitrev(0.5)"]
        .iter()
        .map(|w| w.parse().expect("workload specs are valid"))
        .collect();
    let grid = ScenarioGrid::new(vec!["DB(2,5)".parse().unwrap()])
        .workloads(workloads)
        .seeds(&[2024])
        .slots(2000);
    let rows = run_grid(&grid, default_thread_count()).expect("workloads bind to DB(2,5)");
    println!();
    println!("Workload axis on DB(2,5): equal load, very different traffic:");
    println!("{}", ScenarioRow::table_header());
    for row in &rows {
        println!("{}", row.as_table_row());
    }
    // Results also *stream*: run_grid_streaming hands rows to a RowSink in
    // grid order while later cells are still running, so machine-readable
    // exports (CSV, JSON Lines) never materialise the grid in memory.
    // Undefined averages become null in JSONL (and empty fields in CSV),
    // never the string "NaN" or "-".
    println!();
    println!("The same rows as JSON Lines (streamed; see also `scenarios --format jsonl`):");
    let mut jsonl = JsonLinesSink::new(std::io::stdout().lock());
    let summary =
        run_grid_streaming(&grid, default_thread_count(), &mut jsonl).expect("grid streams");
    println!(
        "({} rows streamed; peak reorder buffer {} rows)",
        summary.rows, summary.peak_buffered
    );

    println!();
    println!("The same grid is declarable as a config file — see examples/sweep.scn and");
    println!("`scenarios --file examples/sweep.scn` in otis-bench (its `format` and");
    println!("`output` keys pick the result format and destination file).");
}
